// Fast-path core for EUA*: an incremental, allocation-free implementation
// of Decide that makes bit-identical decisions to the reference code in
// eua.go. The differential oracle suite (differential_test.go) checks the
// identity empirically on hundreds of seed-derived workloads; this file's
// comments record why it holds analytically.
//
// The reference Decide is O(n²) in ready jobs with an O(√)-heavy inner
// loop: every feasibility probe re-derives each task's Cantelli cycle
// allocation (a square root), every insertion trial copies the tentative
// schedule, and every event rebuilds a pointer-keyed UER map and two
// sorts. The fast path replaces all of that with dense per-task caches
// computed once at Init, per-job UER memoization with lazy invalidation,
// an indexed max-heap in place of the sorts, and an in-place greedy
// insertion that reuses the feasibility prefix sums — while performing
// floating-point operations on the same operands in the same order, which
// is what makes the results bit-identical rather than merely close:
//
//   - Cycle allocations c_i = Cantelli(E, Var, ρ) are pure functions of
//     the task's effective demand moments. For tasks without an online
//     Profiler the moments never change, so the allocation is cached at
//     Init; recomputing it would produce the same float, hence every
//     expression consuming it is unchanged. Tasks WITH a profiler get the
//     allocation recomputed once per scheduling event (the moments only
//     move between events, when the engine observes a completion).
//   - E(f_m), E(f^o_i), D_i (critical time) and the Theorem 1 bound
//     C_i/D_i are likewise pure and cached.
//   - UER(now, j) = U_J(now + c/f_m) / (c · E(f_m)) is memoized per job
//     for step TUFs: Step.Utility is Height everywhere on [0, Deadline]
//     and UtilityAt clamps the ≤1e-9-relative boundary overshoot, so
//     every job that passes JobFeasible evaluates to exactly Height —
//     making the ratio independent of now while the job's Executed
//     cycles (and hence c) are unchanged. The memo is invalidated by
//     comparing the stored Executed stamp. Non-step TUFs genuinely
//     depend on now and are recomputed every event.
//   - The reference sorts live jobs by critical time (a total order:
//     AbsCritical, Arrival, Task.ID, Index) and then stable-sorts by UER
//     descending. Because the underlying order is total, the composition
//     is the unique order (UER desc, ties by sched.Less); popping an
//     indexed max-heap with exactly that comparator yields the identical
//     permutation without allocating.
//   - Greedy insertion: the reference copies the schedule and re-walks
//     Feasible(tent) per candidate. Feasible accumulates
//     t += c_j/f_m left to right, so the accumulated value before any
//     position depends only on the prefix — which insertion at i does
//     not change. The fast path therefore caches fin[k] (the accumulated
//     time after slot k), starts each trial at fin[i−1], and replays
//     only the candidate and the suffix: the same additions on the same
//     floats as Feasible(tent). Prefix checks are implied by the
//     invariant that the current schedule passed its own checks with
//     unchanged fin values.
//   - decideFreq builds its look-ahead entries in ctx.Tasks order, as
//     the reference does, and calls the shared
//     sched.LookAheadFrequencyInPlace so the deferral loop — including
//     the sort that breaks ties among equal critical times — is the same
//     code on the same values.
package eua

import (
	"math"

	"github.com/euastar/euastar/internal/sched"
	"github.com/euastar/euastar/internal/task"
	"github.com/euastar/euastar/internal/tuf"
)

// fastState holds the fast path's per-task caches and reusable scratch
// buffers. It lives inside Scheduler and is populated by initFast.
type fastState struct {
	fm         float64 // f_m, the highest table frequency
	perCycleFM float64 // E(f_m), cached (pure in the model coefficients)

	// Dense per-task caches, indexed by registration order (ctx.Tasks
	// order, with unknown tasks appended lazily). taskIdx maps task ID →
	// dense index.
	taskIdx   map[int]int
	tasks     []*task.Task
	cacheable []bool    // Profiler == nil: allocation-derived values fixed
	alloc     []float64 // c_i (NaN when not cacheable)
	minFreq   []float64 // C_i/D_i (NaN when not cacheable)
	critTime  []float64 // D_i (always pure: TUF and ν are immutable)
	foFreq    []float64 // f^o_i
	foCost    []float64 // E(f^o_i)
	stepUER   []bool    // step TUF + cacheable: UER memoizable per job

	// energyConstrained cache, valid when every ctx task is cacheable.
	allCacheable bool
	ecRate       float64
	ecMaxP       float64

	// Per-event lazily recomputed allocations for profiler tasks.
	stamp      uint64
	allocEvent []float64
	allocStamp []uint64

	// Scratch buffers reused across events (never escape into Decisions).
	live     []*task.Job
	liveTi   []int32
	rem      []float64 // EstimatedRemaining per live job
	uer      []float64 // UER per live job
	heap     []int32   // indexed max-heap over live
	order    []*task.Job
	orderRem []float64
	fin      []float64 // fin[k]: accumulated time after executing order[..k]
	earliest []int32   // per task: live index of earliest pending job, -1 none
	pending  []int32   // per task: pending job count
	entries  []sched.LookAheadEntry
}

// initFast populates the caches. Called at the end of Init, after the f^o
// table exists.
func (s *Scheduler) initFast() {
	s.fp = fastState{}
	fp := &s.fp
	fp.fm = s.ctx.Freqs.Max()
	fp.perCycleFM = s.ctx.Energy.PerCycle(fp.fm)
	fp.taskIdx = make(map[int]int, len(s.ctx.Tasks))
	for _, t := range s.ctx.Tasks {
		s.registerFastTask(t)
	}
	fp.allCacheable = true
	for _, c := range fp.cacheable {
		if !c {
			fp.allCacheable = false
			break
		}
	}
	if fp.allCacheable && s.budgetAware {
		// Same expressions, same task order as energyConstrained: the
		// cached sum is the float that loop would produce.
		rate, maxP := 0.0, 0.0
		for _, t := range s.ctx.Tasks {
			rate += t.WindowCycles() * s.ctx.Energy.PerCycle(s.fo[t.ID]) / t.Arrival.P
			if t.Arrival.P > maxP {
				maxP = t.Arrival.P
			}
		}
		fp.ecRate, fp.ecMaxP = rate, maxP
	}
}

// registerFastTask appends one task's cache row. Tasks outside ctx.Tasks
// (possible only if a caller hands Decide foreign jobs) are registered
// lazily so the fast path degrades instead of panicking.
func (s *Scheduler) registerFastTask(t *task.Task) int {
	fp := &s.fp
	ti := len(fp.tasks)
	fp.taskIdx[t.ID] = ti
	fp.tasks = append(fp.tasks, t)
	cacheable := t.Profiler == nil
	fp.cacheable = append(fp.cacheable, cacheable)
	alloc, mf := math.NaN(), math.NaN()
	if cacheable {
		alloc = t.CycleAllocation()
		mf = t.MinFrequency()
	}
	fp.alloc = append(fp.alloc, alloc)
	fp.minFreq = append(fp.minFreq, mf)
	fp.critTime = append(fp.critTime, t.CriticalTime())
	fo, ok := s.fo[t.ID]
	if !ok {
		fo = s.optimalFrequency(t)
		s.fo[t.ID] = fo
	}
	fp.foFreq = append(fp.foFreq, fo)
	fp.foCost = append(fp.foCost, s.ctx.Energy.PerCycle(fo))
	_, isStep := t.TUF.(tuf.Step)
	fp.stepUER = append(fp.stepUER, isStep && cacheable)
	fp.allocEvent = append(fp.allocEvent, 0)
	fp.allocStamp = append(fp.allocStamp, 0)
	fp.earliest = append(fp.earliest, -1)
	fp.pending = append(fp.pending, 0)
	return ti
}

// taskIndex returns the dense index for a job's task, registering unknown
// tasks on first sight.
func (s *Scheduler) taskIndex(t *task.Task) int {
	if ti, ok := s.fp.taskIdx[t.ID]; ok {
		return ti
	}
	return s.registerFastTask(t)
}

// allocOf returns c_i: the Init-time cache for profiler-free tasks, a
// once-per-event recomputation otherwise (profiled moments only change
// between scheduling events, so one evaluation per event is exact).
func (fp *fastState) allocOf(ti int, t *task.Task) float64 {
	if fp.cacheable[ti] {
		return fp.alloc[ti]
	}
	if fp.allocStamp[ti] != fp.stamp {
		fp.allocEvent[ti] = t.CycleAllocation()
		fp.allocStamp[ti] = fp.stamp
	}
	return fp.allocEvent[ti]
}

// minFreqOf returns the Theorem 1 bound C_i/D_i, via the cache or via the
// same expression MinFrequency evaluates (WindowCycles then the divide).
func (fp *fastState) minFreqOf(ti int, t *task.Task) float64 {
	if fp.cacheable[ti] {
		return fp.minFreq[ti]
	}
	wc := float64(t.Arrival.A) * fp.allocOf(ti, t)
	return wc / fp.critTime[ti]
}

// fastUER evaluates UER(now, j) with rem = j.EstimatedRemaining() already
// in hand, memoizing the result for step-TUF jobs (see file comment for
// why the ratio is now-invariant for every feasible step job).
func (s *Scheduler) fastUER(now float64, j *task.Job, ti int, rem float64) float64 {
	fp := &s.fp
	if fp.stepUER[ti] {
		if c := &j.SchedCache; c.Valid && c.ExecStamp == j.Executed {
			return c.UER
		}
		u := j.UtilityAt(now+rem/fp.fm) / (rem * fp.perCycleFM)
		j.SchedCache = task.SchedCache{UER: u, ExecStamp: j.Executed, Valid: true}
		return u
	}
	return j.UtilityAt(now+rem/fp.fm) / (rem * fp.perCycleFM)
}

// heapLess orders live indices by UER descending, breaking exact ties by
// the critical-time total order — the composition the reference's
// ByCriticalTime + stableSortByUERDesc pair produces.
func (s *Scheduler) heapLess(a, b int32) bool {
	ua, ub := s.fp.uer[a], s.fp.uer[b]
	if ua != ub {
		return ua > ub
	}
	return sched.Less(s.fp.live[a], s.fp.live[b])
}

func (s *Scheduler) heapDown(i int) {
	h := s.fp.heap
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		best := l
		if r := l + 1; r < n && s.heapLess(h[r], h[l]) {
			best = r
		}
		if !s.heapLess(h[best], h[i]) {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

// heapInit builds the max-heap over all live indices.
func (s *Scheduler) heapInit(n int) {
	h := s.fp.heap[:0]
	for i := 0; i < n; i++ {
		h = append(h, int32(i))
	}
	s.fp.heap = h
	for i := n/2 - 1; i >= 0; i-- {
		s.heapDown(i)
	}
}

// heapPop removes and returns the highest-priority live index.
func (s *Scheduler) heapPop() int32 {
	h := s.fp.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	s.fp.heap = h[:last]
	s.heapDown(0)
	return top
}

// decideFast is the fast-path Decide (Algorithm 1). It mirrors the
// reference implementation step for step; see the file comment for the
// bit-identity argument of each replacement.
func (s *Scheduler) decideFast(now float64, ready []*task.Job) sched.Decision {
	fp := &s.fp
	fp.stamp++
	fm := fp.fm

	// Lines 9–11: abort infeasible jobs; gather the rest with their
	// remaining-cycle estimates and UERs. Aborts are rare and escape into
	// the Decision, so they are allocated fresh; everything else reuses
	// scratch.
	live, liveTi := fp.live[:0], fp.liveTi[:0]
	rem, uer := fp.rem[:0], fp.uer[:0]
	var aborts []*task.Job
	for _, j := range ready {
		ti := s.taskIndex(j.Task)
		r := j.EstimatedRemainingWith(fp.allocOf(ti, j.Task))
		if now+r/fm > j.Termination+1e-12*j.Termination {
			j.AbortReason = "infeasible at f_m"
			aborts = append(aborts, j)
			continue
		}
		live = append(live, j)
		liveTi = append(liveTi, int32(ti))
		rem = append(rem, r)
		uer = append(uer, s.fastUER(now, j, ti, r))
	}
	fp.live, fp.liveTi, fp.rem, fp.uer = live, liveTi, rem, uer
	if len(live) == 0 {
		return sched.Decision{Abort: aborts}
	}

	var jexe *task.Job
	if s.noUER {
		// Ablation: plain EDF order — the head is the critical-time
		// minimum, no feasibility filtering (as in the reference branch).
		jexe = live[0]
		for _, j := range live[1:] {
			if sched.Less(j, jexe) {
				jexe = j
			}
		}
	} else {
		jexe = s.greedyHeadFast(now, fm)
		if jexe == nil {
			return sched.Decision{Abort: aborts}
		}
	}

	// Lines 19–21.
	fexe := fm
	if !s.noDVS {
		fexe = s.decideFreqFast(now, jexe)
	}
	return sched.Decision{Run: jexe, Freq: fexe, Abort: aborts}
}

// greedyHeadFast runs Algorithm 1 lines 12–18 over fp.live and returns the
// head of the resulting feasible schedule (nil if it is empty): jobs are
// drawn from the UER max-heap and inserted at their critical-time position
// when the schedule stays feasible at f_m.
func (s *Scheduler) greedyHeadFast(now, fm float64) *task.Job {
	fp := &s.fp
	live, rem, uer := fp.live, fp.rem, fp.uer
	s.heapInit(len(live))

	order, orderRem, fin := fp.order[:0], fp.orderRem[:0], fp.fin[:0]
	committed := 0.0
	budgetLeft := math.Inf(1)
	constrained := false
	if s.budgetAware && s.budgetKnown {
		budgetLeft = s.energyBudget - s.spentEnergy
		constrained = s.fastEnergyConstrained(budgetLeft)
	}
	iters := 0
	for len(fp.heap) > 0 {
		idx := s.heapPop()
		if uer[idx] <= 0 {
			break // heap order: no later job has positive UER
		}
		j := live[idx]
		cost := 0.0
		if s.budgetAware {
			cost = rem[idx] * fp.foCost[fp.liveTi[idx]]
			if committed+cost > budgetLeft {
				continue // rationed out, as in the reference
			}
			if constrained && uer[idx] < s.fleetUER {
				continue
			}
		}
		iters++
		// Insertion position: first slot whose job follows j in the
		// critical-time total order (sort.Search semantics of
		// InsertByCritical).
		lo, hi := 0, len(order)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if sched.Less(j, order[mid]) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		i := lo
		// Feasibility trial: replay Feasible(tent) from the unchanged
		// prefix sum, visiting only the candidate and the suffix.
		t := now
		if i > 0 {
			t = fin[i-1]
		}
		t += rem[idx] / fm
		ok := !(t > j.Termination+1e-12*j.Termination)
		if ok {
			for k := i; k < len(order); k++ {
				t += orderRem[k] / fm
				if t > order[k].Termination+1e-12*order[k].Termination {
					ok = false
					break
				}
			}
		}
		if ok {
			order = append(order, nil)
			copy(order[i+1:], order[i:])
			order[i] = j
			orderRem = append(orderRem, 0)
			copy(orderRem[i+1:], orderRem[i:])
			orderRem[i] = rem[idx]
			fin = append(fin, 0)
			t = now
			if i > 0 {
				t = fin[i-1]
			}
			for k := i; k < len(order); k++ {
				t += orderRem[k] / fm
				fin[k] = t
			}
			committed += cost
		} else if s.strictBreak {
			break
		}
	}
	fp.order, fp.orderRem, fp.fin = order, orderRem, fin
	s.ins.FeasibilityIterations(iters)
	if len(order) == 0 {
		return nil
	}
	return order[0]
}

// fastEnergyConstrained is energyConstrained with the fleet rate summed
// once at Init when no task profiles online (the sum runs over the same
// tasks in the same order, so the cached float is the one the reference
// loop computes).
func (s *Scheduler) fastEnergyConstrained(budgetLeft float64) bool {
	fp := &s.fp
	if !fp.allCacheable {
		return s.energyConstrained(budgetLeft)
	}
	lookahead := s.budgetLookahead
	if lookahead <= 0 {
		lookahead = energyConstrainedWindows * fp.ecMaxP
	}
	return fp.ecRate > 0 && budgetLeft/fp.ecRate < lookahead
}

// decideFreqFast is Algorithm 2 over the fast path's dense per-task view:
// earliest pending job and pending count per task come from two reusable
// arrays instead of a per-event map, entries reuse one buffer, and the
// deferral loop is the shared sched.LookAheadFrequencyInPlace.
func (s *Scheduler) decideFreqFast(now float64, jexe *task.Job) float64 {
	fp := &s.fp
	live, liveTi, rem := fp.live, fp.liveTi, fp.rem

	// Dense EarliestByTask: minimum by the critical-time total order is
	// iteration-order independent, so this matches the reference map.
	for ti := range fp.tasks {
		fp.earliest[ti] = -1
		fp.pending[ti] = 0
	}
	for li, j := range live {
		ti := liveTi[li]
		if e := fp.earliest[ti]; e < 0 || sched.Less(j, live[e]) {
			fp.earliest[ti] = int32(li)
		}
		fp.pending[ti]++
	}

	entries := fp.entries[:0]
	for ti, t := range s.ctx.Tasks {
		if fp.pending[ti] == 0 {
			entry := sched.LookAheadEntry{
				AbsCritical: now + fp.critTime[ti],
				StaticUtil:  fp.minFreqOf(ti, t),
			}
			if !s.noPhantom {
				at, count := s.nextPossibleArrival(now, t)
				entry.AbsCritical = at + fp.critTime[ti]
				entry.Remaining = float64(count) * fp.allocOf(ti, t)
			}
			entries = append(entries, entry)
			continue
		}
		e := fp.earliest[ti]
		remaining := rem[e] + float64(t.Arrival.A-1)*fp.allocOf(ti, t)
		if s.noWindowed {
			remaining = rem[e]
		}
		entries = append(entries, sched.LookAheadEntry{
			AbsCritical: live[e].AbsCritical,
			Remaining:   remaining,
			StaticUtil:  fp.minFreqOf(ti, t),
		})
		if !s.noPhantom {
			if at, count := s.nextPossibleArrival(now, t); count > 0 {
				entries = append(entries, sched.LookAheadEntry{
					AbsCritical: at + fp.critTime[ti],
					Remaining:   float64(count) * fp.allocOf(ti, t),
					StaticUtil:  0,
				})
			}
		}
	}
	fp.entries = entries

	fm := fp.fm
	req := sched.LookAheadFrequencyInPlace(now, fm, entries)
	if req > fm {
		req = fm
	}
	fexe := s.ctx.Freqs.ClampSelect(req)
	if !s.noFoClamp {
		if fo := fp.foFreq[fp.taskIdx[jexe.Task.ID]]; fo > fexe {
			fexe = fo
		}
	}
	return fexe
}
