package eua_test

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/euastar/euastar/internal/cpu"
	"github.com/euastar/euastar/internal/energy"
	"github.com/euastar/euastar/internal/engine"
	"github.com/euastar/euastar/internal/metrics"
	"github.com/euastar/euastar/internal/rng"
	"github.com/euastar/euastar/internal/sched"
	"github.com/euastar/euastar/internal/sched/edf"
	"github.com/euastar/euastar/internal/sched/eua"
	"github.com/euastar/euastar/internal/task"
	"github.com/euastar/euastar/internal/tuf"
	"github.com/euastar/euastar/internal/uam"
)

func ctx(ts task.Set) *sched.Context {
	ft := cpu.PowerNowK6()
	return &sched.Context{Tasks: ts, Freqs: ft, Energy: energy.MustPreset(energy.E1, ft.Max())}
}

func stepTask(id int, p, height, mean float64) *task.Task {
	return &task.Task{
		ID: id, Arrival: uam.Spec{A: 1, P: p},
		TUF:    tuf.NewStep(height, p),
		Demand: task.Demand{Mean: mean, Variance: 0},
		Req:    task.Requirement{Nu: 1, Rho: 0.9},
	}
}

func TestInitRejectsBadContext(t *testing.T) {
	s := eua.New()
	if err := s.Init(&sched.Context{}); err == nil {
		t.Fatal("empty context accepted")
	}
}

func TestName(t *testing.T) {
	if eua.New().Name() != "EUA*" {
		t.Fatal("name")
	}
	if eua.New(eua.WithoutDVS()).Name() != "EUA*-noDVS" {
		t.Fatal("noDVS name")
	}
	if eua.New(eua.WithoutUERInsertion()).Name() != "EUA*-noUER" {
		t.Fatal("noUER name")
	}
	if eua.New(eua.WithoutFoClamp()).Name() != "EUA*-noFo" {
		t.Fatal("noFo name")
	}
	if eua.New(eua.WithoutWindowedDemand()).Name() != "EUA*-noWin" {
		t.Fatal("noWin name")
	}
	if eua.New(eua.WithBudgetAwareness(1)).Name() != "EUA*-budget" {
		t.Fatal("budget name")
	}
}

func TestUERDefinition(t *testing.T) {
	tk := stepTask(1, 0.1, 10, 1e6)
	c := ctx(task.Set{tk})
	s := eua.New()
	if err := s.Init(c); err != nil {
		t.Fatal(err)
	}
	j := task.NewJob(tk, 0, 0, rng.New(1))
	fm := c.Freqs.Max()
	cAlloc := tk.CycleAllocation()
	want := tk.TUF.Utility(cAlloc/fm) / (cAlloc * c.Energy.PerCycle(fm))
	if got := s.UER(0, j); math.Abs(got-want) > 1e-12*want {
		t.Fatalf("UER = %v, want %v", got, want)
	}
}

func TestUERDecreasesAsCriticalTimeNears(t *testing.T) {
	// For a linear TUF the utility of the predicted completion shrinks
	// with time, so the UER must be non-increasing in now.
	tk := &task.Task{
		ID: 1, Arrival: uam.Spec{A: 1, P: 0.1},
		TUF:    tuf.NewLinear(10, 0, 0.1),
		Demand: task.Demand{Mean: 1e6, Variance: 0},
		Req:    task.Requirement{Nu: 0.3, Rho: 0.9},
	}
	c := ctx(task.Set{tk})
	s := eua.New()
	if err := s.Init(c); err != nil {
		t.Fatal(err)
	}
	j := task.NewJob(tk, 0, 0, rng.New(1))
	prev := math.Inf(1)
	for _, now := range []float64{0, 0.02, 0.05, 0.08} {
		u := s.UER(now, j)
		if u > prev+1e-12 {
			t.Fatalf("UER increased at t=%v", now)
		}
		prev = u
	}
}

func TestDecideIdleOnEmpty(t *testing.T) {
	tk := stepTask(1, 0.1, 10, 1e6)
	s := eua.New()
	if err := s.Init(ctx(task.Set{tk})); err != nil {
		t.Fatal(err)
	}
	d := s.Decide(0, nil)
	if d.Run != nil || len(d.Abort) != 0 {
		t.Fatalf("decision = %+v", d)
	}
}

func TestDecideAbortsInfeasible(t *testing.T) {
	tk := stepTask(1, 0.1, 10, 50e6) // 50 ms at f_m
	s := eua.New()
	if err := s.Init(ctx(task.Set{tk})); err != nil {
		t.Fatal(err)
	}
	j := task.NewJob(tk, 0, 0, rng.New(1))
	// At t = 60 ms the job cannot finish by 100 ms? 60+50=110 > 100: abort.
	d := s.Decide(0.06, []*task.Job{j})
	if len(d.Abort) != 1 || d.Abort[0] != j || d.Run != nil {
		t.Fatalf("decision = %+v", d)
	}
}

func TestDecidePrefersHigherUER(t *testing.T) {
	// Two jobs, same critical time, same demand — different utility
	// heights. When both fit, the critical-time order decides execution;
	// when only one fits, the higher-UER job must win.
	hi := stepTask(1, 0.1, 100, 60e6)
	lo := stepTask(2, 0.1, 1, 60e6)
	s := eua.New()
	if err := s.Init(ctx(task.Set{hi, lo})); err != nil {
		t.Fatal(err)
	}
	jHi := task.NewJob(hi, 0, 0, rng.New(1))
	jLo := task.NewJob(lo, 0, 0, rng.New(2))
	// 60+60 = 120 ms of work for 100 ms windows: only one can fit.
	d := s.Decide(0, []*task.Job{jLo, jHi})
	if d.Run != jHi {
		t.Fatalf("ran %v, want the high-utility job", d.Run)
	}
}

func TestDecideFreqScalesWithLoad(t *testing.T) {
	mk := func(mean float64) *task.Task { return stepTask(1, 0.1, 10, mean) }
	var prev float64
	for _, mean := range []float64{1e6, 20e6, 50e6, 99e6} {
		tk := mk(mean)
		s := eua.New()
		if err := s.Init(ctx(task.Set{tk})); err != nil {
			t.Fatal(err)
		}
		j := task.NewJob(tk, 0, 0, rng.New(1))
		d := s.Decide(0, []*task.Job{j})
		if d.Run != j {
			t.Fatalf("mean %v: no job selected", mean)
		}
		if d.Freq < prev {
			t.Fatalf("frequency not monotone in load: %v after %v", d.Freq, prev)
		}
		prev = d.Freq
	}
	if prev != 1000e6 {
		t.Fatalf("99%% load should need f_m, got %v", prev)
	}
}

func TestFoClampUnderE3(t *testing.T) {
	// Under E3 the per-cycle-optimal frequency is interior (~794 MHz →
	// table step 820 MHz); a nearly idle task must still run at >= f^o
	// with the clamp, and below it without.
	ft := cpu.PowerNowK6()
	c3 := &sched.Context{
		Tasks:  task.Set{stepTask(1, 0.5, 10, 1e6)},
		Freqs:  ft,
		Energy: energy.MustPreset(energy.E3, ft.Max()),
	}
	withClamp := eua.New()
	if err := withClamp.Init(c3); err != nil {
		t.Fatal(err)
	}
	j := task.NewJob(c3.Tasks[0], 0, 0, rng.New(1))
	d := withClamp.Decide(0, []*task.Job{j})
	if d.Freq < 730e6 {
		t.Fatalf("with clamp: freq %v below UER-optimal region", d.Freq)
	}

	noClamp := eua.New(eua.WithoutFoClamp())
	if err := noClamp.Init(c3); err != nil {
		t.Fatal(err)
	}
	j2 := task.NewJob(c3.Tasks[0], 0, 0, rng.New(1))
	d2 := noClamp.Decide(0, []*task.Job{j2})
	if d2.Freq != 360e6 {
		t.Fatalf("without clamp: freq %v, want lowest", d2.Freq)
	}
}

func TestWithoutDVSAlwaysFm(t *testing.T) {
	tk := stepTask(1, 0.1, 10, 1e6)
	s := eua.New(eua.WithoutDVS())
	if err := s.Init(ctx(task.Set{tk})); err != nil {
		t.Fatal(err)
	}
	j := task.NewJob(tk, 0, 0, rng.New(1))
	if d := s.Decide(0, []*task.Job{j}); d.Freq != 1000e6 {
		t.Fatalf("freq = %v", d.Freq)
	}
}

// --- Timeliness properties (Section 4) -------------------------------

// periodicStepSet builds n periodic step-TUF tasks. withVariance selects
// stochastic demands (Var = E, the paper's setting); without it demands
// are deterministic and never exceed their allocation, the regime in which
// the Section 4 theorems promise hard guarantees ("absence of CPU
// overloads").
func periodicStepSet(src *rng.Source, n int, withVariance bool) task.Set {
	ts := make(task.Set, n)
	for i := range ts {
		p := src.Uniform(0.02, 0.2)
		variance := 0.0
		if withVariance {
			variance = 1e6
		}
		ts[i] = &task.Task{
			ID: i + 1, Arrival: uam.Spec{A: 1, P: p},
			TUF:    tuf.NewStep(src.Uniform(1, 70), p),
			Demand: task.Demand{Mean: 1e6, Variance: variance},
			Req:    task.Requirement{Nu: 1, Rho: 0.96},
		}
	}
	return ts
}

func runWith(t *testing.T, ts task.Set, s sched.Scheduler, seed uint64, horizon float64) *engine.Result {
	t.Helper()
	ft := cpu.PowerNowK6()
	res, err := engine.Run(engine.Config{
		Tasks: ts, Scheduler: s, Freqs: ft,
		Energy:  energy.MustPreset(energy.E1, ft.Max()),
		Horizon: horizon, Seed: seed, AbortAtTermination: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTheorem2EDFEquivalenceUnderload: under periodic ⟨1,P⟩ tasks with
// step TUFs and no overload, EUA* accrues exactly the total utility of EDF
// and produces a critical-time-ordered schedule (all jobs complete by
// their critical times).
func TestTheorem2EDFEquivalenceUnderload(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		src := rng.New(seed * 7)
		ts := periodicStepSet(src, 4, false).ScaleToLoad(0.5, cpu.PowerNowK6().Max())
		resEUA := runWith(t, ts, eua.New(), seed, 1.0)
		resEDF := runWith(t, ts, edf.New(true), seed, 1.0)
		ua, ue := metrics.Analyze(resEUA), metrics.Analyze(resEDF)
		if math.Abs(ua.AccruedUtility-ue.AccruedUtility) > 1e-6*ue.AccruedUtility {
			t.Fatalf("seed %d: EUA %v != EDF %v", seed, ua.AccruedUtility, ue.AccruedUtility)
		}
	}
}

// TestCorollary3MeetsAllCriticalTimes: in the same regime EUA* meets every
// task critical time.
func TestCorollary3MeetsAllCriticalTimes(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		src := rng.New(seed * 13)
		ts := periodicStepSet(src, 5, false).ScaleToLoad(0.6, cpu.PowerNowK6().Max())
		res := runWith(t, ts, eua.New(), seed, 1.0)
		for _, j := range res.Jobs {
			if j.State != task.Completed {
				t.Fatalf("seed %d: job %v not completed (%v)", seed, j, j.AbortReason)
			}
			if j.FinishedAt > j.AbsCritical+1e-9 {
				t.Fatalf("seed %d: job %v missed critical time by %v", seed, j, j.Lateness())
			}
		}
	}
}

// TestCorollary4MaxLateness: EUA*'s maximum lateness in the underloaded
// periodic regime equals EDF's (both meet everything, so both maxima are
// non-positive; EUA*'s must not exceed EDF's by more than numerical
// noise).
func TestCorollary4MaxLateness(t *testing.T) {
	src := rng.New(99)
	ts := periodicStepSet(src, 4, false).ScaleToLoad(0.7, cpu.PowerNowK6().Max())
	ra := metrics.Analyze(runWith(t, ts, eua.New(), 3, 1.0))
	re := metrics.Analyze(runWith(t, ts, edf.New(true), 3, 1.0))
	if ra.MaxLateness > 1e-9 {
		t.Fatalf("EUA max lateness %v > 0 underload", ra.MaxLateness)
	}
	if re.MaxLateness > 1e-9 {
		t.Fatalf("EDF max lateness %v > 0 underload", re.MaxLateness)
	}
}

// TestTheorem5StatisticalAssurance: during underload every task meets its
// {ν, ρ} requirement empirically.
func TestTheorem5StatisticalAssurance(t *testing.T) {
	src := rng.New(2025)
	ts := periodicStepSet(src, 4, true).ScaleToLoad(0.6, cpu.PowerNowK6().Max())
	res := runWith(t, ts, eua.New(), 11, 5.0)
	rep := metrics.Analyze(res)
	if !rep.AssuranceSatisfied() {
		for _, pt := range rep.PerTask {
			t.Logf("%v: met %d/%d (rho=%v)", pt.Task, pt.Met, pt.Released, pt.Task.Req.Rho)
		}
		t.Fatal("assurance violated during underload")
	}
}

// TestTheorem6NonStepTUFs: the schedulability condition extends to
// non-increasing non-step TUFs; with linear TUFs and moderate load every
// requirement holds.
func TestTheorem6NonStepTUFs(t *testing.T) {
	src := rng.New(4)
	n := 4
	ts := make(task.Set, n)
	for i := range ts {
		p := src.Uniform(0.05, 0.2)
		ts[i] = &task.Task{
			ID: i + 1, Arrival: uam.Spec{A: 1, P: p},
			TUF:    tuf.NewLinear(src.Uniform(10, 50), 0, p),
			Demand: task.Demand{Mean: 1e6, Variance: 1e6},
			Req:    task.Requirement{Nu: 0.3, Rho: 0.9},
		}
	}
	ts = ts.ScaleToLoad(0.5, cpu.PowerNowK6().Max())
	rep := metrics.Analyze(runWith(t, ts, eua.New(), 21, 5.0))
	if !rep.AssuranceSatisfied() {
		t.Fatal("assurance violated for non-step TUFs during underload")
	}
}

// TestOverloadPrefersImportance: during overload EUA* must accrue more
// utility than a plain EDF with the same abortion policy, by favouring
// high-importance jobs (Figure 2(a)'s overload region).
func TestOverloadPrefersImportance(t *testing.T) {
	src := rng.New(77)
	ts := periodicStepSet(src, 5, true)
	// Spread importance widely so the UA policy has something to exploit.
	for i, tk := range ts {
		h := 1.0 + float64(i*i*20)
		tk.TUF = tuf.NewStep(h, tk.Arrival.P)
	}
	ts = ts.ScaleToLoad(1.6, cpu.PowerNowK6().Max())
	ra := metrics.Analyze(runWith(t, ts, eua.New(), 5, 2.0))
	re := metrics.Analyze(runWith(t, ts, edf.New(true), 5, 2.0))
	if ra.AccruedUtility <= re.AccruedUtility {
		t.Fatalf("overload: EUA %v <= EDF %v", ra.AccruedUtility, re.AccruedUtility)
	}
}

// TestQuickUnderloadStatisticalAssurance is the property the paper
// actually promises under stochastic operation (Theorem 5): during
// underload every task accrues its ν bound with probability at least ρ.
// EUA*'s look-ahead deferral is aggressive — like Pillai–Shin laEDF it can
// manufacture rare transient overloads even below load 1 — so individual
// critical-time misses are possible, but their frequency must stay within
// the 1−ρ allowance.
func TestQuickUnderloadStatisticalAssurance(t *testing.T) {
	f := func(seed uint64, loadRaw uint8) bool {
		load := 0.2 + float64(loadRaw%60)/100 // 0.2 – 0.79
		src := rng.New(seed)
		ts := periodicStepSet(src, 3, false).ScaleToLoad(load, cpu.PowerNowK6().Max())
		ft := cpu.PowerNowK6()
		res, err := engine.Run(engine.Config{
			Tasks: ts, Scheduler: eua.New(), Freqs: ft,
			Energy:  energy.MustPreset(energy.E1, ft.Max()),
			Horizon: 2.0, Seed: seed, AbortAtTermination: true,
		})
		if err != nil {
			return false
		}
		return metrics.Analyze(res).AssuranceSatisfied()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// --- Ablation behaviour -------------------------------------------------

// TestStrictBreakDiverges constructs a case where the literal break
// (stopping insertion at the first infeasible prefix) leaves schedulable
// utility on the table: three jobs where the middle-UER job does not fit
// but the lowest-UER one does.
func TestStrictBreakDiverges(t *testing.T) {
	// Job A: huge utility, short. Job B: medium utility, HUGE demand
	// (cannot fit behind A). Job C: small utility, tiny demand with a far
	// deadline (fits behind A easily).
	a := stepTask(1, 0.1, 100, 30e6)
	b := stepTask(2, 0.1, 50, 90e6)
	c := stepTask(3, 0.4, 1, 1e6)
	set := task.Set{a, b, c}

	mk := func(opts ...eua.Option) sched.Decision {
		s := eua.New(opts...)
		if err := s.Init(ctx(set)); err != nil {
			t.Fatal(err)
		}
		ja := task.NewJob(a, 0, 0, rng.New(1))
		jb := task.NewJob(b, 0, 0, rng.New(2))
		jc := task.NewJob(c, 0, 0, rng.New(3))
		return s.Decide(0, []*task.Job{ja, jb, jc})
	}
	// Both select A first, so the observable divergence is in which jobs
	// remain unaborted/schedulable downstream; here we simply document
	// that both pick the same head while the skip variant retains C in its
	// schedule (exercised indirectly: the decision is identical, but the
	// strict variant must not crash or abort C).
	dDefault := mk()
	dStrict := mk(eua.WithStrictBreak())
	if dDefault.Run == nil || dStrict.Run == nil {
		t.Fatal("no job selected")
	}
	if dDefault.Run.Task.ID != 1 || dStrict.Run.Task.ID != 1 {
		t.Fatalf("heads: default %v strict %v", dDefault.Run, dStrict.Run)
	}
	if len(dStrict.Abort) != 0 {
		t.Fatalf("strict variant aborted %v", dStrict.Abort)
	}
}

// TestPhantomReservationRestoresAssurance reproduces DESIGN.md §5's
// finding on a geometry where the literal Algorithm 2 misses critical
// times below saturation while the reservation does not.
func TestPhantomReservationRestoresAssurance(t *testing.T) {
	violated := 0
	for seed := uint64(1); seed <= 30; seed++ {
		src := rng.New(seed)
		ts := periodicStepSet(src, 3, false).ScaleToLoad(0.79, cpu.PowerNowK6().Max())
		resLiteral := runWith(t, ts, eua.New(eua.WithoutPhantomReservation()), seed, 3.0)
		resSafe := runWith(t, ts, eua.New(), seed, 3.0)
		for _, j := range resSafe.Jobs {
			if j.State != task.Completed {
				t.Fatalf("seed %d: safe variant missed %v", seed, j)
			}
		}
		for _, j := range resLiteral.Jobs {
			if j.State != task.Completed {
				violated++
				break
			}
		}
	}
	if violated == 0 {
		t.Skip("literal variant happened to meet everything on these seeds")
	}
	t.Logf("literal Algorithm 2 missed critical times on %d/30 underloaded seeds", violated)
}

// TestWindowedDemandMattersForBursts: without C_i^r the DVS analysis only
// sees the earliest pending job of a burst, picks too low a frequency and
// misses critical times.
func TestWindowedDemandMattersForBursts(t *testing.T) {
	ts := task.Set{{
		ID: 1, Arrival: uam.Spec{A: 4, P: 0.1},
		TUF:    tuf.NewStep(10, 0.1),
		Demand: task.Demand{Mean: 20e6, Variance: 0},
		Req:    task.Requirement{Nu: 1, Rho: 0.9},
	}}
	// 4 simultaneous jobs of 20 ms (at f_m) per 100 ms window: needs
	// 800 MHz sustained; the per-job view sees only 20e6/0.1 = 200 MHz.
	resFull := runWith(t, ts, eua.New(), 1, 1.0)
	resNoWin := runWith(t, ts, eua.New(eua.WithoutWindowedDemand()), 1, 1.0)
	missFull, missNoWin := 0, 0
	for _, j := range resFull.Jobs {
		if j.State != task.Completed {
			missFull++
		}
	}
	for _, j := range resNoWin.Jobs {
		if j.State != task.Completed {
			missNoWin++
		}
	}
	if missFull != 0 {
		t.Fatalf("windowed variant missed %d jobs", missFull)
	}
	if missNoWin <= missFull {
		t.Skip("per-job variant survived this geometry (recomputation saved it)")
	}
}

// TestBudgetAwarenessRationsEnergy: under a tight battery with jobs of
// very different importance, the budget-aware variant spends the last
// joules on the high-UER task and accrues more utility than plain EUA*.
func TestBudgetAwarenessRationsEnergy(t *testing.T) {
	// Equal demands, very different utilities, saturating load so the
	// battery is the binding constraint.
	hi := stepTask(1, 0.1, 100, 30e6)
	lo := stepTask(2, 0.1, 1, 30e6)
	ts := task.Set{hi, lo}
	ft := cpu.PowerNowK6()
	model := energy.MustPreset(energy.E1, ft.Max())
	// Enough battery for roughly a third of the horizon's demand when
	// executed at mid-ladder frequencies.
	budget := 200e6 * model.PerCycle(730e6)

	run := func(s sched.Scheduler) *metrics.Report {
		res, err := engine.Run(engine.Config{
			Tasks: ts, Scheduler: s, Freqs: ft, Energy: model,
			Horizon: 1.0, Seed: 2, AbortAtTermination: true,
			EnergyBudget: budget,
		})
		if err != nil {
			t.Fatal(err)
		}
		return metrics.Analyze(res)
	}
	plain := run(eua.New())
	aware := run(eua.New(eua.WithBudgetAwareness(1.5))) // protect the whole 1 s mission
	if aware.AccruedUtility <= plain.AccruedUtility {
		t.Fatalf("budget-aware %v <= plain %v under a tight battery",
			aware.AccruedUtility, plain.AccruedUtility)
	}
}

// TestBudgetAwarenessNoBudgetNoEffect: without a configured budget the
// option must not change behaviour.
func TestBudgetAwarenessNoBudgetNoEffect(t *testing.T) {
	src := rng.New(9)
	ts := periodicStepSet(src, 3, false).ScaleToLoad(0.6, cpu.PowerNowK6().Max())
	a := metrics.Analyze(runWith(t, ts, eua.New(), 4, 1.0))
	b := metrics.Analyze(runWith(t, ts, eua.New(eua.WithBudgetAwareness(0)), 4, 1.0))
	if a.AccruedUtility != b.AccruedUtility || a.TotalEnergy != b.TotalEnergy {
		t.Fatalf("budget awareness changed an unbudgeted run: %v/%v vs %v/%v",
			a.AccruedUtility, a.TotalEnergy, b.AccruedUtility, b.TotalEnergy)
	}
}
