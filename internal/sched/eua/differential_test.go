package eua_test

// The differential oracle suite: every case below runs the identical
// simulation twice — once on the reference EUA* implementation, once on
// the fast-path core — and requires the two results to be bit-identical:
// decision and event counts, every job's resolution (state, finish time,
// accrued utility, executed cycles, abort reason), the full execution
// trace span by span, and all energy accounting, compared with exact
// float64 equality. The grid covers all three Table 1 applications, both
// TUF families, underload through heavy overload, every scheduler option
// (ablation flags, strict break, budget awareness), online-profiled
// tasks, fault-injection plans, abort costs, overload safe mode,
// progress-utility accounting and idle static power — so any divergence
// introduced into fastpath.go fails loudly with the first differing
// field's coordinates.

import (
	"fmt"
	"testing"

	"github.com/euastar/euastar/internal/cpu"
	"github.com/euastar/euastar/internal/energy"
	"github.com/euastar/euastar/internal/engine"
	"github.com/euastar/euastar/internal/faults"
	"github.com/euastar/euastar/internal/profile"
	"github.com/euastar/euastar/internal/rng"
	"github.com/euastar/euastar/internal/sched/eua"
	"github.com/euastar/euastar/internal/workload"
)

// diffCase builds one engine configuration twice: build(fast) must return
// a fresh config each call (fresh scheduler, freshly synthesized task
// set) so the two runs share no mutable state — profiled tasks mutate
// their estimators during a run.
type diffCase struct {
	name  string
	build func(fast bool) engine.Config
}

// oracleCases enumerates the differential grid. Over 200 cases by
// construction; TestDifferentialOracle asserts the floor so the suite
// cannot silently shrink.
func oracleCases() []diffCase {
	var cases []diffCase
	apps := []workload.App{workload.A1(), workload.A2(), workload.A3()}
	shapes := []workload.Shape{workload.Step, workload.LinearDecay}
	presets := []energy.Preset{energy.E1, energy.E2, energy.E3}

	add := func(name string, build func(fast bool) engine.Config) {
		cases = append(cases, diffCase{name: name, build: build})
	}

	// Base grid: app × TUF family × load × seed, defaults otherwise. The
	// energy preset rotates with the case index so all three settings are
	// exercised.
	for ai, app := range apps {
		for si, shape := range shapes {
			for li, load := range []float64{0.4, 0.9, 1.3, 1.7} {
				for seed := uint64(1); seed <= 5; seed++ {
					app, shape, load, seed := app, shape, load, seed
					preset := presets[(ai+si+li+int(seed))%len(presets)]
					add(fmt.Sprintf("base/%s-%s-L%.1f-s%d", app.Name, shape, load, seed),
						func(fast bool) engine.Config {
							cfg := baseConfig(app, shape, load, seed, preset, fast)
							return cfg
						})
				}
			}
		}
	}

	// Scheduler option variants (the ablation surface) on A2/step.
	options := []struct {
		name string
		opts []eua.Option
	}{
		{"noDVS", []eua.Option{eua.WithoutDVS()}},
		{"noUER", []eua.Option{eua.WithoutUERInsertion()}},
		{"noFo", []eua.Option{eua.WithoutFoClamp()}},
		{"noWin", []eua.Option{eua.WithoutWindowedDemand()}},
		{"noPhantom", []eua.Option{eua.WithoutPhantomReservation()}},
		{"strictBreak", []eua.Option{eua.WithStrictBreak()}},
		{"strictBreak-noFo", []eua.Option{eua.WithStrictBreak(), eua.WithoutFoClamp()}},
	}
	for _, o := range options {
		for _, load := range []float64{0.8, 1.6} {
			for seed := uint64(1); seed <= 2; seed++ {
				o, load, seed := o, load, seed
				add(fmt.Sprintf("opt/%s-L%.1f-s%d", o.name, load, seed),
					func(fast bool) engine.Config {
						cfg := baseConfig(workload.A2(), workload.Step, load, seed, energy.E1, fast, o.opts...)
						return cfg
					})
			}
		}
	}

	// Fault plans: overruns, sticky/stalling switches, abort spikes,
	// adversarial UAM bursts — combined with an abort teardown cost so
	// the spike path runs.
	plans := []string{
		"seed=7,overrun=0.15,overrun-factor=1.6",
		"seed=11,sticky=0.2,stall-prob=0.1,stall=0.0005",
		"seed=13,overrun=0.1,sticky=0.1,abort-spike=0.2,abort-spike-factor=5,bursts=true",
	}
	for pi, spec := range plans {
		for _, load := range []float64{0.8, 1.6} {
			for seed := uint64(1); seed <= 3; seed++ {
				spec, load, seed := spec, load, seed
				add(fmt.Sprintf("faults/p%d-L%.1f-s%d", pi, load, seed),
					func(fast bool) engine.Config {
						plan, err := faults.Parse(spec)
						if err != nil {
							panic(err)
						}
						cfg := baseConfig(workload.A3(), workload.Step, load, seed, energy.E2, fast)
						cfg.Faults = plan
						cfg.AbortCost = 2000
						return cfg
					})
			}
		}
	}

	// Budget awareness + finite battery: the rationing and
	// energy-constrained admission paths, including depletion. The
	// fractions are of a typical unconstrained A2 run's total energy
	// (~5e26 model units at these loads): 0.5 binds mid-run (depletion
	// and rationing both fire), 0.05 rations from the start.
	for _, budget := range []float64{0.5, 0.05} {
		for seed := uint64(1); seed <= 2; seed++ {
			for _, load := range []float64{0.9, 1.4} {
				budget, seed, load := budget, seed, load
				add(fmt.Sprintf("budget/b%.2f-L%.1f-s%d", budget, load, seed),
					func(fast bool) engine.Config {
						cfg := baseConfig(workload.A2(), workload.Step, load, seed, energy.E1, fast,
							eua.WithBudgetAwareness(0))
						cfg.EnergyBudget = budget * 5e26
						return cfg
					})
			}
		}
	}

	// Online-profiled tasks: allocations move between events, so the fast
	// path must recompute them (its per-event cache) instead of trusting
	// the Init-time snapshot.
	for _, shape := range shapes {
		for seed := uint64(1); seed <= 3; seed++ {
			for _, load := range []float64{0.7, 1.2} {
				shape, seed, load := shape, seed, load
				add(fmt.Sprintf("profiled/%s-L%.1f-s%d", shape, load, seed),
					func(fast bool) engine.Config {
						cfg := baseConfig(workload.A1(), shape, load, seed, energy.E1, fast)
						for i, tk := range cfg.Tasks {
							if i%2 == 0 {
								est, err := profile.New(tk.Demand.Mean*1.3, tk.Demand.Variance, 4)
								if err != nil {
									panic(err)
								}
								tk.Profiler = est
							}
						}
						return cfg
					})
			}
		}
	}

	// Engine extensions riding on the decision stream: overload safe
	// mode, progress utility, idle static power, no-abort termination.
	extras := []struct {
		name string
		mod  func(*engine.Config)
	}{
		// Safe mode only arms on termination-time misses, which EUA*'s
		// abort policy preempts; disabling abortion lets the miss streak
		// build so shedding actually fires.
		{"safemode", func(c *engine.Config) {
			c.AbortAtTermination = false
			c.SafeModeMisses = 3
			c.SafeModeShed = 0.5
		}},
		{"progress", func(c *engine.Config) { c.ProgressUtility = true }},
		{"idlepower", func(c *engine.Config) { c.IdleStaticPower = 0.05 }},
		{"noabort", func(c *engine.Config) { c.AbortAtTermination = false }},
	}
	for _, ex := range extras {
		for seed := uint64(1); seed <= 2; seed++ {
			for _, load := range []float64{0.8, 1.7} {
				ex, seed, load := ex, seed, load
				add(fmt.Sprintf("engine/%s-L%.1f-s%d", ex.name, load, seed),
					func(fast bool) engine.Config {
						cfg := baseConfig(workload.A3(), workload.Step, load, seed, energy.E3, fast)
						ex.mod(&cfg)
						return cfg
					})
			}
		}
	}

	return cases
}

// baseConfig assembles one run: a freshly synthesized, load-scaled task
// set (the same floats every call — synthesis is a pure function of the
// seed) and a fresh scheduler, reference or fast-path.
func baseConfig(app workload.App, shape workload.Shape, load float64, seed uint64, preset energy.Preset, fast bool, opts ...eua.Option) engine.Config {
	ft := cpu.PowerNowK6()
	model, err := energy.NewPreset(preset, ft.Max())
	if err != nil {
		panic(err)
	}
	ts := app.MustSynthesize(rng.New(seed*0x9e3779b9), workload.Options{Shape: shape})
	ts = ts.ScaleToLoad(load, ft.Max())
	if fast {
		opts = append(opts, eua.WithFastPath())
	}
	return engine.Config{
		Tasks:              ts,
		Scheduler:          eua.New(opts...),
		Freqs:              ft,
		Energy:             model,
		Horizon:            0.5,
		Seed:               seed,
		AbortAtTermination: true,
		RecordTrace:        true,
	}
}

// requireIdentical compares two results field by field with exact
// equality. Any difference is a fast-path bug by definition.
func requireIdentical(t *testing.T, ref, fast *engine.Result) {
	t.Helper()
	type scalar struct {
		name     string
		ref, got float64
	}
	scalars := []scalar{
		{"TotalEnergy", ref.TotalEnergy, fast.TotalEnergy},
		{"Cycles", ref.Cycles, fast.Cycles},
		{"BusyTime", ref.BusyTime, fast.BusyTime},
		{"EndTime", ref.EndTime, fast.EndTime},
		{"IdleEnergy", ref.IdleEnergy, fast.IdleEnergy},
		{"AbortCycles", ref.AbortCycles, fast.AbortCycles},
		{"DepletedAt", ref.DepletedAt, fast.DepletedAt},
	}
	for _, s := range scalars {
		if s.ref != s.got {
			t.Fatalf("%s: reference %v, fast path %v", s.name, s.ref, s.got)
		}
	}
	type count struct {
		name     string
		ref, got int
	}
	counts := []count{
		{"Switches", ref.Switches, fast.Switches},
		{"Decisions", ref.Decisions, fast.Decisions},
		{"Events", ref.Events, fast.Events},
		{"FaultEvents", ref.FaultEvents, fast.FaultEvents},
		{"SafeModeEntries", ref.SafeModeEntries, fast.SafeModeEntries},
		{"JobsShed", ref.JobsShed, fast.JobsShed},
		{"Jobs", len(ref.Jobs), len(fast.Jobs)},
		{"TraceSpans", len(ref.Trace), len(fast.Trace)},
	}
	for _, c := range counts {
		if c.ref != c.got {
			t.Fatalf("%s: reference %d, fast path %d", c.name, c.ref, c.got)
		}
	}
	if ref.Depleted != fast.Depleted {
		t.Fatalf("Depleted: reference %v, fast path %v", ref.Depleted, fast.Depleted)
	}
	for i := range ref.Jobs {
		a, b := ref.Jobs[i], fast.Jobs[i]
		if a.Task.ID != b.Task.ID || a.Index != b.Index {
			t.Fatalf("job %d: identity mismatch %v vs %v", i, a, b)
		}
		if a.ActualCycles != b.ActualCycles || a.Arrival != b.Arrival {
			t.Fatalf("job %v: realized workload differs (cycles %v vs %v, arrival %v vs %v) — harness bug",
				a, a.ActualCycles, b.ActualCycles, a.Arrival, b.Arrival)
		}
		if a.State != b.State {
			t.Fatalf("job %v: state %v vs %v", a, a.State, b.State)
		}
		if a.FinishedAt != b.FinishedAt {
			t.Fatalf("job %v: finished at %v vs %v", a, a.FinishedAt, b.FinishedAt)
		}
		if a.Utility != b.Utility {
			t.Fatalf("job %v: utility %v vs %v", a, a.Utility, b.Utility)
		}
		if a.Executed != b.Executed {
			t.Fatalf("job %v: executed %v vs %v", a, a.Executed, b.Executed)
		}
		if a.AbortReason != b.AbortReason {
			t.Fatalf("job %v: abort reason %q vs %q", a, a.AbortReason, b.AbortReason)
		}
	}
	for i := range ref.Trace {
		a, b := ref.Trace[i], fast.Trace[i]
		if a.Job.Task.ID != b.Job.Task.ID || a.Job.Index != b.Job.Index {
			t.Fatalf("span %d: job %v vs %v", i, a.Job, b.Job)
		}
		if a.Start != b.Start || a.End != b.End || a.Frequency != b.Frequency || a.Cycles != b.Cycles {
			t.Fatalf("span %d (job %v): [%v,%v]@%v/%v cycles vs [%v,%v]@%v/%v cycles",
				i, a.Job, a.Start, a.End, a.Frequency, a.Cycles, b.Start, b.End, b.Frequency, b.Cycles)
		}
	}
}

func TestDifferentialOracle(t *testing.T) {
	cases := oracleCases()
	if len(cases) < 200 {
		t.Fatalf("oracle grid shrank to %d cases; the suite requires at least 200", len(cases))
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			ref, err := engine.Run(c.build(false))
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			fast, err := engine.Run(c.build(true))
			if err != nil {
				t.Fatalf("fast-path run: %v", err)
			}
			requireIdentical(t, ref, fast)
		})
	}
}

// TestFastPathNameUnchanged pins the scheme name: sweep output rows are
// keyed by Name(), so the fast path must not rename the scheduler.
func TestFastPathNameUnchanged(t *testing.T) {
	if got := eua.New(eua.WithFastPath()).Name(); got != "EUA*" {
		t.Fatalf("fast-path scheduler name = %q, want EUA*", got)
	}
	if !eua.New(eua.WithFastPath()).FastPath() {
		t.Fatal("WithFastPath did not enable the fast path")
	}
	s := eua.New()
	if s.FastPath() {
		t.Fatal("fast path enabled by default")
	}
	s.EnableFastPath()
	if !s.FastPath() {
		t.Fatal("EnableFastPath did not enable the fast path")
	}
}
