// Package eua implements EUA*, the paper's contribution: an energy-
// efficient utility-accrual scheduler for TUF-constrained tasks arriving
// under the Unimodal Arbitrary Arrival Model (Algorithm 1), with the
// stochastic DVS technique decideFreq (Algorithm 2).
//
// At every scheduling event EUA*:
//
//  1. aborts jobs that cannot meet their termination time even at the
//     highest frequency f_m;
//  2. computes each remaining job's Utility and Energy Ratio
//     UER = U(t + c/f_m) / (c · E(f_m)), the utility accrued per unit
//     energy;
//  3. greedily inserts jobs in non-increasing UER order into a
//     critical-time-ordered schedule, keeping it feasible at f_m;
//  4. executes the head job at the frequency chosen by decideFreq —
//     the lowest discrete frequency that runs all non-deferrable work
//     before the earliest critical time — raised, if necessary, to the
//     task's offline UER-optimal frequency f^o.
package eua

import (
	"fmt"
	"math"

	"github.com/euastar/euastar/internal/sched"
	"github.com/euastar/euastar/internal/task"
)

// Option configures a Scheduler; the zero configuration is the paper's
// EUA*. Options disable individual mechanisms for the ablation studies
// called out in DESIGN.md.
type Option func(*Scheduler)

// WithoutDVS forces execution at f_m, preserving EUA*'s sequencing but
// disabling frequency scaling. This is the "EUA* without DVS"
// normalization baseline of Figure 3.
func WithoutDVS() Option { return func(s *Scheduler) { s.noDVS = true } }

// WithoutUERInsertion replaces the UER-greedy schedule construction with
// plain critical-time (EDF) ordering, keeping the abort logic and DVS.
func WithoutUERInsertion() Option { return func(s *Scheduler) { s.noUER = true } }

// WithoutFoClamp disables the final f_exe = max(f_exe, f^o) step, letting
// decideFreq's choice stand even below the task's UER-optimal frequency.
func WithoutFoClamp() Option { return func(s *Scheduler) { s.noFoClamp = true } }

// WithoutWindowedDemand makes decideFreq consider only each task's
// earliest pending job instead of the full windowed demand C_i^r,
// quantifying the value of the UAM-aware bookkeeping.
func WithoutWindowedDemand() Option { return func(s *Scheduler) { s.noWindowed = true } }

// WithStrictBreak stops the greedy insertion at the first job whose
// insertion would make the schedule infeasible (a literal reading of
// Algorithm 1 line 18) instead of skipping that job and continuing, the
// DASA-style behaviour this package defaults to.
func WithStrictBreak() Option { return func(s *Scheduler) { s.strictBreak = true } }

// WithBudgetAwareness makes EUA* ration a finite energy budget (the
// paper's first named future work, in the spirit of the authors' follow-up
// EBUA work). lookahead is the remaining mission time, in seconds, the
// battery should survive; pass 0 to default to a few windows. When the
// projected lifetime at the full fleet's planned energy rate falls below
// the lookahead, admission switches to utility-per-energy rationing: a
// job is scheduled only if its UER is at least the energy-weighted
// average of the higher-UER work already admitted — under a binding
// battery, total expected utility budget·(ΣU/ΣE) only grows for such
// jobs. Rationed jobs stay pending and abort at their termination times.
func WithBudgetAwareness(lookahead float64) Option {
	return func(s *Scheduler) {
		s.budgetAware = true
		s.budgetLookahead = lookahead
	}
}

// WithFastPath switches Decide to the incremental fast-path core in
// fastpath.go: cached cycle allocations, memoized per-job UERs with lazy
// invalidation, an indexed max-heap in place of the per-event sorts,
// copy-free greedy insertion and a reusable windowed-demand table for
// decideFreq. The fast path makes bit-identical decisions — the
// differential oracle suite (differential_test.go) proves decision
// streams, accrued utility and energy equal on every covered workload —
// it is purely a constant-factor optimization. All other options compose
// with it.
func WithFastPath() Option { return func(s *Scheduler) { s.fast = true } }

// WithoutPhantomReservation disables the UAM phantom-arrival reservation
// in decideFreq (see Scheduler), reverting to the literal Algorithm 2,
// which reserves only rate capacity for tasks without pending jobs. The
// literal form is measurably more aggressive: at loads around 0.7–0.8 it
// occasionally defers so much work that an idle task's next burst causes a
// transient overload and a critical-time miss — violating the underload
// assurances of Section 4 that the reservation restores.
func WithoutPhantomReservation() Option { return func(s *Scheduler) { s.noPhantom = true } }

// Scheduler is the EUA* algorithm. Create it with New and use one instance
// per simulation run.
type Scheduler struct {
	ctx *sched.Context
	ins *sched.Instruments
	fo  map[int]float64 // task ID → offline UER-optimal frequency f^o

	// arrivals records, per task, the last a_i release times. Under UAM
	// ⟨a, P⟩ the next release cannot occur before (a-th most recent
	// release) + P, which bounds when an idle task can next demand work —
	// the phantom-arrival reservation decideFreq uses to stay safe against
	// the model's adversary.
	arrivals map[int][]float64

	noDVS       bool
	noUER       bool
	noFoClamp   bool
	noWindowed  bool
	noPhantom   bool
	strictBreak bool

	// fast selects the incremental Decide implementation (fastpath.go);
	// fp holds its caches and scratch buffers.
	fast bool
	fp   fastState

	// Budget state (WithBudgetAwareness), fed by the engine via OnEnergy.
	budgetAware     bool
	budgetLookahead float64
	spentEnergy     float64
	energyBudget    float64
	budgetKnown     bool
	// fleetUER is the fleet's energy-weighted average fresh-job UER, the
	// admission threshold while the battery binds (computed at Init).
	fleetUER float64
}

// New returns an EUA* scheduler with the given options.
func New(opts ...Option) *Scheduler {
	s := &Scheduler{}
	for _, o := range opts {
		o(s)
	}
	return s
}

// EnableFastPath turns on the fast-path core after construction (see
// WithFastPath). It must be called before Init. The experiment runner
// uses it to retrofit the -fastpath toggle onto scheme constructors.
func (s *Scheduler) EnableFastPath() { s.fast = true }

// FastPath reports whether the fast-path core is active.
func (s *Scheduler) FastPath() bool { return s.fast }

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string {
	switch {
	case s.noDVS:
		return "EUA*-noDVS"
	case s.noUER:
		return "EUA*-noUER"
	case s.noFoClamp:
		return "EUA*-noFo"
	case s.noWindowed:
		return "EUA*-noWin"
	case s.budgetAware:
		return "EUA*-budget"
	default:
		return "EUA*"
	}
}

// Init implements sched.Scheduler: the paper's offlineComputing(). For
// every task it computes the UER-optimal frequency
//
//	f^o_i = argmax_{f ∈ table} U_i(c_i/f) / (c_i · E(f))
//
// — the frequency at which executing one fresh job of T_i accrues the most
// utility per unit energy. Per-task critical times D_i and allocations c_i
// are derived on demand from the task model (Section 3.1).
func (s *Scheduler) Init(ctx *sched.Context) error {
	if err := ctx.Validate(); err != nil {
		return fmt.Errorf("eua: %w", err)
	}
	s.ctx = ctx
	s.ins = ctx.Instruments(s.Name())
	s.fo = make(map[int]float64, len(ctx.Tasks))
	s.arrivals = make(map[int][]float64, len(ctx.Tasks))
	for _, t := range ctx.Tasks {
		s.fo[t.ID] = s.optimalFrequency(t)
	}
	if s.budgetAware {
		fm := ctx.Freqs.Max()
		sumU, sumE := 0.0, 0.0
		for _, t := range ctx.Tasks {
			c := t.CycleAllocation()
			e := float64(t.Arrival.A) * c * ctx.Energy.PerCycle(fm)
			sumU += float64(t.Arrival.A) * t.TUF.Utility(c/fm)
			sumE += e
		}
		if sumE > 0 {
			s.fleetUER = sumU / sumE
		}
	}
	if s.fast {
		s.initFast()
	}
	return nil
}

// OnRelease implements engine.EventObserver: record the release so the
// phantom-arrival reservation knows the earliest legal next release.
func (s *Scheduler) OnRelease(now float64, j *task.Job) {
	id := j.Task.ID
	h := append(s.arrivals[id], now)
	if max := j.Task.Arrival.A; len(h) > max {
		h = h[len(h)-max:]
	}
	s.arrivals[id] = h
}

// OnComplete implements engine.EventObserver (no-op; releases are all the
// history the reservation needs).
func (s *Scheduler) OnComplete(now float64, j *task.Job) {}

// OnEnergy implements engine.BudgetObserver.
func (s *Scheduler) OnEnergy(spent, budget float64) {
	s.spentEnergy, s.energyBudget, s.budgetKnown = spent, budget, true
}

// plannedCost estimates the energy a job's remaining work will consume at
// its UER-optimal frequency (the cheapest sensible execution plan).
func (s *Scheduler) plannedCost(j *task.Job) float64 {
	f := s.fo[j.Task.ID]
	return j.EstimatedRemaining() * s.ctx.Energy.PerCycle(f)
}

// energyConstrainedWindows is the default look-ahead of the budget
// rationing when the caller gives no mission horizon: rationing engages
// when the projected battery lifetime at full admission drops below this
// many of the longest task windows.
const energyConstrainedWindows = 4

// energyConstrained reports whether the remaining budget is the binding
// constraint: at the full fleet's planned energy rate, the battery would
// die within the protected look-ahead.
func (s *Scheduler) energyConstrained(budgetLeft float64) bool {
	rate, maxP := 0.0, 0.0
	for _, t := range s.ctx.Tasks {
		rate += t.WindowCycles() * s.ctx.Energy.PerCycle(s.fo[t.ID]) / t.Arrival.P
		if t.Arrival.P > maxP {
			maxP = t.Arrival.P
		}
	}
	lookahead := s.budgetLookahead
	if lookahead <= 0 {
		lookahead = energyConstrainedWindows * maxP
	}
	return rate > 0 && budgetLeft/rate < lookahead
}

// nextPossibleArrival returns the earliest instant a new job of t may
// legally be released, and how many instances may arrive simultaneously
// then, given the recorded history and the UAM bound.
func (s *Scheduler) nextPossibleArrival(now float64, t *task.Task) (at float64, count int) {
	h := s.arrivals[t.ID]
	a := t.Arrival.A
	if len(h) < a {
		// Fewer than a recorded releases: the window constraint is not yet
		// binding; a − len(h) instances could arrive right now.
		return now, a - len(h)
	}
	at = h[len(h)-a] + t.Arrival.P
	if at < now {
		at = now
	}
	// At time `at`, releases within (at − P, at] count against the bound.
	recent := 0
	for _, r := range h {
		if r > at-t.Arrival.P {
			recent++
		}
	}
	return at, a - recent
}

func (s *Scheduler) optimalFrequency(t *task.Task) float64 {
	c := t.CycleAllocation()
	best, bestUER := s.ctx.Freqs.Max(), math.Inf(-1)
	// Iterate ascending so that ties resolve to the lowest (cheapest)
	// frequency.
	for _, f := range s.ctx.Freqs {
		u := t.TUF.Utility(c / f)
		uer := u / (c * s.ctx.Energy.PerCycle(f))
		if uer > bestUER {
			best, bestUER = f, uer
		}
	}
	if bestUER <= 0 {
		// No frequency yields positive utility for a fresh job (the task
		// is infeasible in isolation); fall back to f_m.
		return s.ctx.Freqs.Max()
	}
	return best
}

// UER returns job j's Utility and Energy Ratio at time now evaluated at
// the highest frequency, as in Algorithm 1 line 11:
// U_J(now + c/f_m) / (E(f_m) · c).
func (s *Scheduler) UER(now float64, j *task.Job) float64 {
	return sched.UER(now, j, s.ctx.Freqs.Max(), s.ctx.Energy)
}

// Decide implements sched.Scheduler (Algorithm 1).
func (s *Scheduler) Decide(now float64, ready []*task.Job) sched.Decision {
	start := s.ins.Begin()
	var d sched.Decision
	if s.fast {
		d = s.decideFast(now, ready)
	} else {
		d = s.decideRef(now, ready)
	}
	s.ins.End(start, len(ready), d.Freq)
	return d
}

// decideRef is the reference (non-fast-path) Algorithm 1.
func (s *Scheduler) decideRef(now float64, ready []*task.Job) sched.Decision {
	fm := s.ctx.Freqs.Max()

	// Line 9–11: abort infeasible jobs, keep the rest.
	var live []*task.Job
	var aborts []*task.Job
	for _, j := range ready {
		if !sched.JobFeasible(j, now, fm) {
			j.AbortReason = "infeasible at f_m"
			aborts = append(aborts, j)
			continue
		}
		live = append(live, j)
	}
	if len(live) == 0 {
		return sched.Decision{Abort: aborts}
	}

	// Line 12: σ_tmp := sortByUER(J_r), non-increasing, deterministic
	// tie-break by critical time. UERs are keyed by position — uer[i]
	// belongs to live[i] — and the two slices are permuted in tandem.
	sched.ByCriticalTime(live)
	uer := make([]float64, len(live))
	for i, j := range live {
		uer[i] = s.UER(now, j)
	}
	stableSortByUERDesc(live, uer)

	// Lines 13–18: greedy feasible insertion in critical-time order.
	var order []*task.Job
	if s.noUER {
		// Ablation: plain EDF order over all live jobs.
		order = append(order, live...)
		sched.ByCriticalTime(order)
	} else {
		committed := 0.0
		budgetLeft := math.Inf(1)
		constrained := false
		if s.budgetAware && s.budgetKnown {
			budgetLeft = s.energyBudget - s.spentEnergy
			constrained = s.energyConstrained(budgetLeft)
		}
		iters := 0
		for i, j := range live {
			if uer[i] <= 0 {
				break // sorted: no later job has positive UER
			}
			cost := 0.0
			if s.budgetAware {
				cost = s.plannedCost(j)
				if committed+cost > budgetLeft {
					// The battery cannot pay for this job on top of the
					// higher-UER work already committed: ration it out
					// (it stays pending and may abort at its termination).
					continue
				}
				// While the battery binds, expected mission utility is
				// budget·(ΣU/ΣE): spending on work below the fleet's
				// energy-weighted average utility-per-energy dilutes it —
				// those joules are worth more on the better tasks' future
				// jobs.
				if constrained && uer[i] < s.fleetUER {
					continue
				}
			}
			iters++
			tent := sched.InsertByCritical(append([]*task.Job(nil), order...), j)
			if sched.Feasible(tent, now, fm) {
				order = tent
				committed += cost
			} else if s.strictBreak {
				break
			}
		}
		s.ins.FeasibilityIterations(iters)
	}
	if len(order) == 0 {
		return sched.Decision{Abort: aborts}
	}

	// Line 19: the selected job is the head of the feasible schedule.
	jexe := order[0]

	// Lines 20–21: decide the execution frequency.
	fexe := fm
	if !s.noDVS {
		fexe = s.decideFreq(now, live, jexe)
	}
	return sched.Decision{Run: jexe, Freq: fexe, Abort: aborts}
}

// decideFreq implements Algorithm 2: the stochastic DVS technique.
func (s *Scheduler) decideFreq(now float64, live []*task.Job, jexe *task.Job) float64 {
	views := sched.EarliestByTask(live)
	entries := make([]sched.LookAheadEntry, 0, len(s.ctx.Tasks))
	for _, t := range s.ctx.Tasks {
		v, ok := views[t.ID]
		if !ok {
			// No pending invocation. The UAM adversary may release the
			// task's next burst at the earliest instant its history
			// permits; reserve actual cycles for that phantom arrival (not
			// just rate capacity) so deferral cannot overcommit the
			// processor right before the burst lands.
			entry := sched.LookAheadEntry{
				AbsCritical: now + t.CriticalTime(),
				StaticUtil:  t.MinFrequency(),
			}
			if !s.noPhantom {
				at, count := s.nextPossibleArrival(now, t)
				entry.AbsCritical = at + t.CriticalTime()
				entry.Remaining = float64(count) * t.CycleAllocation()
			}
			entries = append(entries, entry)
			continue
		}
		remaining := sched.WindowRemaining(t, v)
		if s.noWindowed {
			remaining = v.Earliest.EstimatedRemaining()
		}
		entries = append(entries, sched.LookAheadEntry{
			AbsCritical: v.Earliest.AbsCritical,
			Remaining:   remaining,
			StaticUtil:  t.MinFrequency(),
		})
		if !s.noPhantom {
			// Reserve the next window's burst as well: the static rate
			// term spreads that demand fluidly, but the adversary delivers
			// it as a lump whose critical time can precede other tasks'
			// already-pending work. StaticUtil stays with the entry above
			// so capacity is not double-counted.
			if at, count := s.nextPossibleArrival(now, t); count > 0 {
				entries = append(entries, sched.LookAheadEntry{
					AbsCritical: at + t.CriticalTime(),
					Remaining:   float64(count) * t.CycleAllocation(),
					StaticUtil:  0,
				})
			}
		}
	}
	fm := s.ctx.Freqs.Max()
	req := sched.LookAheadFrequency(now, fm, entries)
	if req > fm {
		req = fm // Algorithm 2 line 9: cap at the highest frequency.
	}
	fexe := s.ctx.Freqs.ClampSelect(req)
	if !s.noFoClamp {
		// Line 11: never run the selected job below its UER-optimal
		// frequency — "we cannot decrease f_exe, but may increase it to
		// maximize the system-level energy efficiency".
		if fo := s.fo[jexe.Task.ID]; fo > fexe {
			fexe = fo
		}
	}
	return fexe
}

// stableSortByUERDesc sorts jobs by UER non-increasing, preserving the
// existing (critical-time) order among equal UERs. uer is positional —
// uer[i] is jobs[i]'s ratio — and both slices are permuted in tandem, so
// no pointer-keyed map (with its allocations and hashing) is needed.
func stableSortByUERDesc(jobs []*task.Job, uer []float64) {
	// Insertion sort keeps stability without allocating; job counts per
	// event are small (tens).
	for i := 1; i < len(jobs); i++ {
		j, u := jobs[i], uer[i]
		k := i - 1
		for k >= 0 && uer[k] < u {
			jobs[k+1], uer[k+1] = jobs[k], uer[k]
			k--
		}
		jobs[k+1], uer[k+1] = j, u
	}
}
