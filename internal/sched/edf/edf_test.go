package edf_test

import (
	"math"
	"testing"

	"github.com/euastar/euastar/internal/cpu"
	"github.com/euastar/euastar/internal/energy"
	"github.com/euastar/euastar/internal/engine"
	"github.com/euastar/euastar/internal/metrics"
	"github.com/euastar/euastar/internal/rng"
	"github.com/euastar/euastar/internal/sched"
	"github.com/euastar/euastar/internal/sched/edf"
	"github.com/euastar/euastar/internal/task"
	"github.com/euastar/euastar/internal/tuf"
	"github.com/euastar/euastar/internal/uam"
)

func stepTask(id int, p, height, mean float64) *task.Task {
	return &task.Task{
		ID: id, Arrival: uam.Spec{A: 1, P: p},
		TUF:    tuf.NewStep(height, p),
		Demand: task.Demand{Mean: mean, Variance: 0},
		Req:    task.Requirement{Nu: 1, Rho: 0.9},
	}
}

func ctx(ts task.Set) *sched.Context {
	ft := cpu.PowerNowK6()
	return &sched.Context{Tasks: ts, Freqs: ft, Energy: energy.MustPreset(energy.E1, ft.Max())}
}

func TestNames(t *testing.T) {
	if edf.New(true).Name() != "EDF-fm" {
		t.Fatal("abort name")
	}
	if edf.New(false).Name() != "EDF-fm-NA" {
		t.Fatal("NA name")
	}
}

func TestInitValidates(t *testing.T) {
	if err := edf.New(true).Init(&sched.Context{}); err == nil {
		t.Fatal("empty context accepted")
	}
	if err := edf.New(true).Init(ctx(task.Set{stepTask(1, 0.1, 10, 1e6)})); err != nil {
		t.Fatal(err)
	}
}

func TestAlwaysHighestFrequency(t *testing.T) {
	tk := stepTask(1, 0.1, 10, 1e6)
	s := edf.New(true)
	if err := s.Init(ctx(task.Set{tk})); err != nil {
		t.Fatal(err)
	}
	j := task.NewJob(tk, 0, 0, rng.New(1))
	d := s.Decide(0, []*task.Job{j})
	if d.Freq != 1000e6 || d.Run != j {
		t.Fatalf("decision = %+v", d)
	}
}

func TestEarliestCriticalTimeFirst(t *testing.T) {
	a, b := stepTask(1, 0.2, 10, 1e6), stepTask(2, 0.05, 10, 1e6)
	s := edf.New(true)
	if err := s.Init(ctx(task.Set{a, b})); err != nil {
		t.Fatal(err)
	}
	ja := task.NewJob(a, 0, 0, rng.New(1))
	jb := task.NewJob(b, 0, 0, rng.New(2))
	if d := s.Decide(0, []*task.Job{ja, jb}); d.Run != jb {
		t.Fatalf("ran %v, want earliest-critical-time job", d.Run)
	}
}

func TestAbortVariantDropsInfeasible(t *testing.T) {
	tk := stepTask(1, 0.1, 10, 50e6)
	s := edf.New(true)
	if err := s.Init(ctx(task.Set{tk})); err != nil {
		t.Fatal(err)
	}
	j := task.NewJob(tk, 0, 0, rng.New(1))
	d := s.Decide(0.06, []*task.Job{j})
	if len(d.Abort) != 1 || d.Run != nil {
		t.Fatalf("decision = %+v", d)
	}
}

func TestNAVariantNeverAborts(t *testing.T) {
	tk := stepTask(1, 0.1, 10, 50e6)
	s := edf.New(false)
	if err := s.Init(ctx(task.Set{tk})); err != nil {
		t.Fatal(err)
	}
	j := task.NewJob(tk, 0, 0, rng.New(1))
	d := s.Decide(0.06, []*task.Job{j})
	if len(d.Abort) != 0 || d.Run != j {
		t.Fatalf("decision = %+v", d)
	}
}

// TestDominoEffect reproduces Locke's observation the paper cites: during
// overloads EDF without abortion suffers domino misses and accrues almost
// no utility, while the abort variant keeps accruing.
func TestDominoEffect(t *testing.T) {
	src := rng.New(7)
	ts := make(task.Set, 4)
	for i := range ts {
		p := src.Uniform(0.03, 0.1)
		ts[i] = stepTask(i+1, p, 10, 1e6)
	}
	ft := cpu.PowerNowK6()
	ts = ts.ScaleToLoad(1.7, ft.Max())
	run := func(s sched.Scheduler) *metrics.Report {
		res, err := engine.Run(engine.Config{
			Tasks: ts, Scheduler: s, Freqs: ft,
			Energy:  energy.MustPreset(energy.E1, ft.Max()),
			Horizon: 2.0, Seed: 3, AbortAtTermination: s.Name() != "EDF-fm-NA",
		})
		if err != nil {
			t.Fatal(err)
		}
		return metrics.Analyze(res)
	}
	abortRep := run(edf.New(true))
	naRep := run(edf.New(false))
	if naRep.UtilityRatio() > 0.5*abortRep.UtilityRatio() {
		t.Fatalf("no domino effect: NA %v vs abort %v", naRep.UtilityRatio(), abortRep.UtilityRatio())
	}
}

// TestEDFOptimalUnderload: with load < 1 and deterministic demands, EDF at
// f_m completes every job by its critical time (Horn's optimality).
func TestEDFOptimalUnderload(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		src := rng.New(seed)
		ts := make(task.Set, 3)
		for i := range ts {
			p := src.Uniform(0.02, 0.2)
			ts[i] = stepTask(i+1, p, src.Uniform(1, 70), 1e6)
		}
		ft := cpu.PowerNowK6()
		ts = ts.ScaleToLoad(0.9, ft.Max())
		res, err := engine.Run(engine.Config{
			Tasks: ts, Scheduler: edf.New(true), Freqs: ft,
			Energy:  energy.MustPreset(energy.E1, ft.Max()),
			Horizon: 1.0, Seed: seed, AbortAtTermination: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range res.Jobs {
			if j.State != task.Completed || j.FinishedAt > j.AbsCritical+1e-9 {
				t.Fatalf("seed %d: EDF missed %v", seed, j)
			}
		}
	}
}

func TestEnergyIsMaxFrequencyEnergy(t *testing.T) {
	tk := stepTask(1, 0.1, 10, 5e6)
	ft := cpu.PowerNowK6()
	em := energy.MustPreset(energy.E1, ft.Max())
	res, err := engine.Run(engine.Config{
		Tasks: task.Set{tk}, Scheduler: edf.New(true), Freqs: ft,
		Energy: em, Horizon: 1.0, Seed: 1, AbortAtTermination: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := res.Cycles * em.PerCycle(ft.Max())
	if math.Abs(res.TotalEnergy-want) > 1e-6*want {
		t.Fatalf("energy = %v, want all cycles at f_m = %v", res.TotalEnergy, want)
	}
}
