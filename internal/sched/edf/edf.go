// Package edf implements Earliest Deadline First (Horn's algorithm) on
// absolute critical times, always executing at the highest frequency f_m.
//
// This is the paper's normalization baseline: "EDF that always uses the
// highest frequency". With abortion enabled it drops jobs that can no
// longer meet their termination time even at f_m; without abortion it
// exhibits the classic domino effect during overloads.
package edf

import (
	"fmt"

	"github.com/euastar/euastar/internal/sched"
	"github.com/euastar/euastar/internal/task"
)

// Scheduler is EDF at fixed f_m.
type Scheduler struct {
	ctx   *sched.Context
	ins   *sched.Instruments
	abort bool
}

// New returns an EDF scheduler. abortInfeasible selects whether jobs that
// cannot finish by their termination time at f_m are aborted (true) or
// left to run uselessly (false — the no-abort "NA" behaviour).
func New(abortInfeasible bool) *Scheduler {
	return &Scheduler{abort: abortInfeasible}
}

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string {
	if s.abort {
		return "EDF-fm"
	}
	return "EDF-fm-NA"
}

// Init implements sched.Scheduler.
func (s *Scheduler) Init(ctx *sched.Context) error {
	if err := ctx.Validate(); err != nil {
		return fmt.Errorf("edf: %w", err)
	}
	s.ctx = ctx
	s.ins = ctx.Instruments(s.Name())
	return nil
}

// Decide implements sched.Scheduler.
func (s *Scheduler) Decide(now float64, ready []*task.Job) sched.Decision {
	start := s.ins.Begin()
	d := s.decide(now, ready)
	s.ins.End(start, len(ready), d.Freq)
	return d
}

func (s *Scheduler) decide(now float64, ready []*task.Job) sched.Decision {
	fm := s.ctx.Freqs.Max()
	var live []*task.Job
	var aborts []*task.Job
	for _, j := range ready {
		if s.abort && !sched.JobFeasible(j, now, fm) {
			j.AbortReason = "infeasible at f_m"
			aborts = append(aborts, j)
			continue
		}
		live = append(live, j)
	}
	if len(live) == 0 {
		return sched.Decision{Abort: aborts}
	}
	sched.ByCriticalTime(live)
	return sched.Decision{Run: live[0], Freq: fm, Abort: aborts}
}
