package dasa_test

import (
	"testing"

	"github.com/euastar/euastar/internal/cpu"
	"github.com/euastar/euastar/internal/energy"
	"github.com/euastar/euastar/internal/engine"
	"github.com/euastar/euastar/internal/metrics"
	"github.com/euastar/euastar/internal/rng"
	"github.com/euastar/euastar/internal/sched"
	"github.com/euastar/euastar/internal/sched/dasa"
	"github.com/euastar/euastar/internal/sched/edf"
	"github.com/euastar/euastar/internal/task"
	"github.com/euastar/euastar/internal/tuf"
	"github.com/euastar/euastar/internal/uam"
)

func stepTask(id int, p, height, mean float64) *task.Task {
	return &task.Task{
		ID: id, Arrival: uam.Spec{A: 1, P: p},
		TUF:    tuf.NewStep(height, p),
		Demand: task.Demand{Mean: mean, Variance: 0},
		Req:    task.Requirement{Nu: 1, Rho: 0.9},
	}
}

func ctx(ts task.Set) *sched.Context {
	ft := cpu.PowerNowK6()
	return &sched.Context{Tasks: ts, Freqs: ft, Energy: energy.MustPreset(energy.E1, ft.Max())}
}

func TestName(t *testing.T) {
	if dasa.New().Name() != "DASA" {
		t.Fatal("name")
	}
}

func TestInitValidates(t *testing.T) {
	if err := dasa.New().Init(&sched.Context{}); err == nil {
		t.Fatal("empty context accepted")
	}
}

func TestAlwaysMaxFrequency(t *testing.T) {
	tk := stepTask(1, 0.1, 10, 1e6)
	s := dasa.New()
	if err := s.Init(ctx(task.Set{tk})); err != nil {
		t.Fatal(err)
	}
	j := task.NewJob(tk, 0, 0, rng.New(1))
	if d := s.Decide(0, []*task.Job{j}); d.Freq != 1000e6 {
		t.Fatalf("freq = %v", d.Freq)
	}
}

func TestOverloadShedsLowDensity(t *testing.T) {
	hi := stepTask(1, 0.1, 100, 60e6)
	lo := stepTask(2, 0.1, 1, 60e6)
	s := dasa.New()
	if err := s.Init(ctx(task.Set{hi, lo})); err != nil {
		t.Fatal(err)
	}
	jHi := task.NewJob(hi, 0, 0, rng.New(1))
	jLo := task.NewJob(lo, 0, 0, rng.New(2))
	if d := s.Decide(0, []*task.Job{jLo, jHi}); d.Run != jHi {
		t.Fatalf("ran %v, want the dense job", d.Run)
	}
}

// TestOverloadBeatsEDF: DASA's raison d'être — during overloads it accrues
// more utility than plain EDF by favouring importance over urgency.
func TestOverloadBeatsEDF(t *testing.T) {
	src := rng.New(21)
	ts := make(task.Set, 5)
	for i := range ts {
		p := src.Uniform(0.03, 0.12)
		ts[i] = stepTask(i+1, p, 1+float64(i*i*25), 1e6)
	}
	ft := cpu.PowerNowK6()
	ts = ts.ScaleToLoad(1.6, ft.Max())
	run := func(s sched.Scheduler) *metrics.Report {
		res, err := engine.Run(engine.Config{
			Tasks: ts, Scheduler: s, Freqs: ft,
			Energy:  energy.MustPreset(energy.E1, ft.Max()),
			Horizon: 2.0, Seed: 6, AbortAtTermination: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return metrics.Analyze(res)
	}
	if du, eu := run(dasa.New()).AccruedUtility, run(edf.New(true)).AccruedUtility; du <= eu {
		t.Fatalf("DASA %v <= EDF %v during overload", du, eu)
	}
}

func TestUnderloadMatchesEDF(t *testing.T) {
	src := rng.New(23)
	ts := make(task.Set, 3)
	for i := range ts {
		p := src.Uniform(0.04, 0.15)
		ts[i] = stepTask(i+1, p, src.Uniform(1, 70), 1e6)
	}
	ft := cpu.PowerNowK6()
	ts = ts.ScaleToLoad(0.6, ft.Max())
	run := func(s sched.Scheduler) float64 {
		res, err := engine.Run(engine.Config{
			Tasks: ts, Scheduler: s, Freqs: ft,
			Energy:  energy.MustPreset(energy.E1, ft.Max()),
			Horizon: 1.0, Seed: 2, AbortAtTermination: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return metrics.Analyze(res).AccruedUtility
	}
	if du, eu := run(dasa.New()), run(edf.New(true)); du != eu {
		t.Fatalf("underload: DASA %v != EDF %v", du, eu)
	}
}
