// Package dasa implements Locke's Dependent Activity Scheduling Algorithm
// (best-effort real-time scheduling, the independent-task variant) as an
// additional utility-accrual baseline without DVS. The paper cites Locke
// [10] for the domino effect that UA schedulers avoid; DASA is the
// canonical UA scheduler EUA*'s sequencing descends from, so it isolates
// what the energy term in the UER adds.
//
// DASA orders jobs by potential utility density U/c (utility per cycle,
// no energy term), greedily inserts them in deadline order keeping the
// schedule feasible, and always runs at f_m.
package dasa

import (
	"fmt"

	"github.com/euastar/euastar/internal/sched"
	"github.com/euastar/euastar/internal/task"
)

// Scheduler is independent-task DASA at fixed f_m.
type Scheduler struct {
	ctx *sched.Context
	ins *sched.Instruments
}

// New returns a DASA scheduler.
func New() *Scheduler { return &Scheduler{} }

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string { return "DASA" }

// Init implements sched.Scheduler.
func (s *Scheduler) Init(ctx *sched.Context) error {
	if err := ctx.Validate(); err != nil {
		return fmt.Errorf("dasa: %w", err)
	}
	s.ctx = ctx
	s.ins = ctx.Instruments(s.Name())
	return nil
}

// Decide implements sched.Scheduler.
func (s *Scheduler) Decide(now float64, ready []*task.Job) sched.Decision {
	start := s.ins.Begin()
	d := s.decide(now, ready)
	s.ins.End(start, len(ready), d.Freq)
	return d
}

func (s *Scheduler) decide(now float64, ready []*task.Job) sched.Decision {
	fm := s.ctx.Freqs.Max()
	var live []*task.Job
	var aborts []*task.Job
	density := make(map[*task.Job]float64, len(ready))
	for _, j := range ready {
		if !sched.JobFeasible(j, now, fm) {
			j.AbortReason = "infeasible at f_m"
			aborts = append(aborts, j)
			continue
		}
		live = append(live, j)
		c := j.EstimatedRemaining()
		density[j] = j.UtilityAt(now+c/fm) / c
	}
	if len(live) == 0 {
		return sched.Decision{Abort: aborts}
	}
	sched.ByCriticalTime(live)
	// Stable sort by density, non-increasing (insertion sort keeps the
	// critical-time tie-break).
	for i := 1; i < len(live); i++ {
		j := live[i]
		k := i - 1
		for k >= 0 && density[live[k]] < density[j] {
			live[k+1] = live[k]
			k--
		}
		live[k+1] = j
	}
	var order []*task.Job
	iters := 0
	for _, j := range live {
		if density[j] <= 0 {
			break
		}
		iters++
		tent := sched.InsertByCritical(append([]*task.Job(nil), order...), j)
		if sched.Feasible(tent, now, fm) {
			order = tent
		}
	}
	s.ins.FeasibilityIterations(iters)
	if len(order) == 0 {
		return sched.Decision{Abort: aborts}
	}
	return sched.Decision{Run: order[0], Freq: fm, Abort: aborts}
}
