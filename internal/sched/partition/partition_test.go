package partition_test

import (
	"strings"
	"testing"

	"github.com/euastar/euastar/internal/cpu"
	"github.com/euastar/euastar/internal/energy"
	"github.com/euastar/euastar/internal/engine"
	"github.com/euastar/euastar/internal/rng"
	"github.com/euastar/euastar/internal/sched"
	"github.com/euastar/euastar/internal/sched/edf"
	"github.com/euastar/euastar/internal/sched/eua"
	"github.com/euastar/euastar/internal/sched/partition"
	"github.com/euastar/euastar/internal/task"
	"github.com/euastar/euastar/internal/workload"
)

func euaFactory() sched.Scheduler { return eua.New() }

// testSet synthesizes an A2 task set scaled to the given system load.
func testSet(load float64, seed uint64) task.Set {
	ft := cpu.PowerNowK6()
	ts := workload.A2().MustSynthesize(rng.New(seed*0x9e3779b9), workload.Options{Shape: workload.Step})
	return ts.ScaleToLoad(load, ft.Max())
}

func testCtx(ts task.Set) *sched.Context {
	ft := cpu.PowerNowK6()
	return &sched.Context{Tasks: ts, Freqs: ft, Energy: energy.MustPreset(energy.E1, ft.Max())}
}

func TestParsePolicy(t *testing.T) {
	for _, s := range []string{"ff", "wf"} {
		p, err := partition.ParsePolicy(s)
		if err != nil || string(p) != s {
			t.Fatalf("ParsePolicy(%q) = %v, %v", s, p, err)
		}
	}
	if _, err := partition.ParsePolicy("best-fit"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestNames(t *testing.T) {
	if got := partition.New(1, partition.FirstFit, euaFactory).Name(); got != "EUA*" {
		t.Fatalf("1-core name %q, want the bare scheme name", got)
	}
	if got := partition.New(4, partition.FirstFit, euaFactory).Name(); got != "EUA*/P4ff" {
		t.Fatalf("4-core first-fit name %q", got)
	}
	if got := partition.New(2, partition.WorstFit, euaFactory).Name(); got != "EUA*/P2wf" {
		t.Fatalf("2-core worst-fit name %q", got)
	}
	if got := partition.NewGlobal(1).Name(); got != "G-UER" {
		t.Fatalf("1-core global name %q", got)
	}
	if got := partition.NewGlobal(4).Name(); got != "G-UER/4" {
		t.Fatalf("4-core global name %q", got)
	}
}

func TestConstructorPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("zero cores", func() { partition.New(0, partition.FirstFit, euaFactory) })
	expectPanic("bad policy", func() { partition.New(2, Policy("mid-fit"), euaFactory) })
	expectPanic("nil factory", func() { partition.New(2, partition.FirstFit, nil) })
	expectPanic("zero-core global", func() { partition.NewGlobal(0) })

	p := partition.New(2, partition.FirstFit, euaFactory)
	if err := p.Init(testCtx(testSet(0.8, 1))); err != nil {
		t.Fatal(err)
	}
	expectPanic("Decide on multi-core", func() { p.Decide(0, nil) })
}

// Policy re-exported locally so the bad-policy panic test can construct
// an invalid value without a conversion at the call site.
type Policy = partition.Policy

func TestAssignment(t *testing.T) {
	ts := testSet(1.2, 3)
	for _, policy := range []partition.Policy{partition.FirstFit, partition.WorstFit} {
		p := partition.New(4, policy, euaFactory)
		if err := p.Init(testCtx(ts)); err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		assign := p.Assignment()
		if len(assign) != len(ts) {
			t.Fatalf("%s: %d of %d tasks assigned", policy, len(assign), len(ts))
		}
		used := map[int]bool{}
		for _, tk := range ts {
			k, ok := assign[tk.ID]
			if !ok {
				t.Fatalf("%s: task %d unassigned", policy, tk.ID)
			}
			if k < 0 || k >= 4 {
				t.Fatalf("%s: task %d on core %d", policy, tk.ID, k)
			}
			used[k] = true
		}
		if len(used) < 2 {
			t.Fatalf("%s: an A2 set at load 1.2 packed onto %d core(s)", policy, len(used))
		}
		// The assignment must be deterministic: a second Init reproduces it.
		q := partition.New(4, policy, euaFactory)
		if err := q.Init(testCtx(ts)); err != nil {
			t.Fatal(err)
		}
		for id, k := range assign {
			if q.Assignment()[id] != k {
				t.Fatalf("%s: assignment not deterministic for task %d", policy, id)
			}
		}
	}
}

// TestOverloadFallback drives a set no single core can admit: every
// task must still land somewhere (the least-utilized core).
func TestOverloadFallback(t *testing.T) {
	ts := testSet(3.5, 2)
	p := partition.New(2, partition.FirstFit, euaFactory)
	if err := p.Init(testCtx(ts)); err != nil {
		t.Fatal(err)
	}
	if len(p.Assignment()) != len(ts) {
		t.Fatalf("%d of %d tasks assigned under overload", len(p.Assignment()), len(ts))
	}
}

// runPartitioned runs one multi-core simulation through the engine.
func runPartitioned(t *testing.T, s sched.Scheduler, cores int, ts task.Set, horizon float64) *engine.Result {
	t.Helper()
	ft := cpu.PowerNowK6()
	res, err := engine.Run(engine.Config{
		Tasks:              ts,
		Scheduler:          s,
		Freqs:              ft,
		Energy:             energy.MustPreset(energy.E1, ft.Max()),
		Cores:              cores,
		Horizon:            horizon,
		Seed:               1,
		AbortAtTermination: true,
		RecordTrace:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPartitionedRun(t *testing.T) {
	ts := testSet(1.6, 1)
	res := runPartitioned(t, partition.New(2, partition.WorstFit, euaFactory), 2, ts, 0.3)
	if res.Cores != 2 {
		t.Fatalf("Cores = %d", res.Cores)
	}
	if res.Migrations != 0 {
		t.Fatalf("partitioned run migrated %d times", res.Migrations)
	}
	var sum float64
	for _, c := range res.PerCore {
		sum += c.Energy
	}
	if sum != res.TotalEnergy {
		t.Fatalf("per-core energies sum to %v, total %v", sum, res.TotalEnergy)
	}
	if !strings.HasPrefix(res.SchedulerName, "EUA*/P2") {
		t.Fatalf("scheduler name %q", res.SchedulerName)
	}
	// Each task's spans stay on its assigned core: partitioning means no
	// migration by construction, not just by counter.
	coreOf := map[int]int{}
	for _, sp := range res.Trace {
		if k, ok := coreOf[sp.Job.Task.ID]; ok && k != sp.Core {
			t.Fatalf("task %d executed on cores %d and %d", sp.Job.Task.ID, k, sp.Core)
		}
		coreOf[sp.Job.Task.ID] = sp.Core
	}
}

// TestPartitionedRefVsFast is the multi-core differential cell: the
// EUA* fast path must stay bit-identical to the reference when both run
// per-core under the same partitioning.
func TestPartitionedRefVsFast(t *testing.T) {
	for _, load := range []float64{0.8, 1.6} {
		for seed := uint64(1); seed <= 3; seed++ {
			ref := runPartitioned(t,
				partition.New(2, partition.FirstFit, func() sched.Scheduler { return eua.New() }),
				2, testSet(load, seed), 0.3)
			fast := runPartitioned(t,
				partition.New(2, partition.FirstFit, func() sched.Scheduler { return eua.New(eua.WithFastPath()) }),
				2, testSet(load, seed), 0.3)
			requireIdentical(t, ref, fast)
		}
	}
}

// TestPartitionedEDF exercises a wrapped scheme without observer or
// fast-path hooks.
func TestPartitionedEDF(t *testing.T) {
	res := runPartitioned(t,
		partition.New(2, partition.FirstFit, func() sched.Scheduler { return edf.New(true) }),
		2, testSet(0.9, 1), 0.2)
	if res.SchedulerName == "" || res.Cycles <= 0 {
		t.Fatalf("empty run: %+v", res)
	}
}

// TestPartitionedBudget exercises the OnEnergy fan-out: a budget-aware
// EUA* on each core must see the system-wide spend and deplete cleanly.
func TestPartitionedBudget(t *testing.T) {
	ft := cpu.PowerNowK6()
	res, err := engine.Run(engine.Config{
		Tasks:              testSet(1.2, 2),
		Scheduler:          partition.New(2, partition.WorstFit, func() sched.Scheduler { return eua.New(eua.WithBudgetAwareness(0)) }),
		Freqs:              ft,
		Energy:             energy.MustPreset(energy.E1, ft.Max()),
		Cores:              2,
		Horizon:            0.3,
		Seed:               2,
		EnergyBudget:       2e26,
		AbortAtTermination: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Depleted {
		t.Skip("budget did not bind; tighten it if the workload changed")
	}
	if res.TotalEnergy > 2e26*(1+1e-9) {
		t.Fatalf("spent %v past the 2e26 budget", res.TotalEnergy)
	}
}

func TestGlobalRun(t *testing.T) {
	ts := testSet(1.6, 1)
	res := runPartitioned(t, partition.NewGlobal(2), 2, ts, 0.3)
	if res.SchedulerName != "G-UER/2" {
		t.Fatalf("scheduler name %q", res.SchedulerName)
	}
	var sum float64
	for _, c := range res.PerCore {
		sum += c.Energy
	}
	if sum != res.TotalEnergy {
		t.Fatalf("per-core energies sum to %v, total %v", sum, res.TotalEnergy)
	}
	var util float64
	for _, j := range res.Jobs {
		util += j.Utility
	}
	if util <= 0 {
		t.Fatal("global dispatch accrued no utility")
	}
}

// TestGlobalUniprocessor runs the m = 1 degenerate case through the
// plain Decide path.
func TestGlobalUniprocessor(t *testing.T) {
	ft := cpu.PowerNowK6()
	res, err := engine.Run(engine.Config{
		Tasks:              testSet(0.9, 1),
		Scheduler:          partition.NewGlobal(1),
		Freqs:              ft,
		Energy:             energy.MustPreset(energy.E1, ft.Max()),
		Horizon:            0.2,
		Seed:               1,
		AbortAtTermination: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cores != 1 || res.Migrations != 0 {
		t.Fatalf("Cores=%d Migrations=%d", res.Cores, res.Migrations)
	}
}

// TestHeterogeneousPartition packs onto a big.LITTLE pair: the little
// core's lower f_max must shrink what the admission test lets it take.
func TestHeterogeneousPartition(t *testing.T) {
	ts := testSet(1.0, 4)
	ft := cpu.PowerNowK6()
	little := cpu.Uniform(200e6, 500e6, 4)
	ctx := testCtx(ts)
	ctx.CoreFreqs = []cpu.FrequencyTable{ft, little}
	p := partition.New(2, partition.WorstFit, euaFactory)
	if err := p.Init(ctx); err != nil {
		t.Fatal(err)
	}
	var bigRate, littleRate float64
	for _, tk := range ts {
		if p.Assignment()[tk.ID] == 0 {
			bigRate += tk.MinFrequency()
		} else {
			littleRate += tk.MinFrequency()
		}
	}
	if littleRate > little.Max()*1.01 && bigRate < ft.Max() {
		t.Fatalf("little core overpacked (%g Hz demand on a %g Hz core) while the big core had room",
			littleRate, little.Max())
	}
}
