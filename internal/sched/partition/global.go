package partition

import (
	"fmt"

	"github.com/euastar/euastar/internal/cpu"
	"github.com/euastar/euastar/internal/energy"
	"github.com/euastar/euastar/internal/sched"
	"github.com/euastar/euastar/internal/task"
)

// Global is the contrasting multiprocessor design point to Partitioned:
// one shared ready queue, dispatched greedily by Utility and Energy
// Ratio. At every scheduling event it aborts the jobs that can no longer
// finish by their termination time even alone at full speed, ranks the
// rest by UER at the reference f_max (EUA*'s Algorithm 1 line 11
// currency), and runs the top m — so jobs migrate freely between cores,
// and the engine's migration counter measures what that freedom costs.
// Each core's DVS frequency is chosen core-locally: the slowest table
// step that still finishes the dispatched job's remaining allocation by
// its critical time.
//
// With m = 1 the greedy top-1 dispatch is a plain highest-UER-first
// uniprocessor scheme — a baseline, not EUA* (which packs a feasible
// schedule, not just the single best job).
type Global struct {
	m      int
	tables []cpu.FrequencyTable
	model  energy.Model
	fmax   float64 // reference top frequency (shared ladder's maximum)

	last   map[*task.Job]int // job → core of its previous dispatch
	ranked []*task.Job       // reusable ranking buffer
	cores  []sched.CoreDecision
	taken  []bool
}

// NewGlobal builds the global scheduler for m cores.
func NewGlobal(m int) *Global {
	if m < 1 {
		panic(fmt.Sprintf("partition: core count %d must be at least 1", m))
	}
	return &Global{m: m}
}

// Name identifies the scheme: "G-UER" with m = 1, "G-UER/4" on 4 cores.
func (g *Global) Name() string {
	if g.m == 1 {
		return "G-UER"
	}
	return fmt.Sprintf("G-UER/%d", g.m)
}

// Cores returns the core count the scheduler was built for.
func (g *Global) Cores() int { return g.m }

// Init captures the platform parameters.
func (g *Global) Init(ctx *sched.Context) error {
	if err := ctx.Validate(); err != nil {
		return err
	}
	g.tables = ctx.CoreTables(g.m)
	g.model = ctx.Energy
	g.fmax = ctx.Freqs.Max()
	g.last = make(map[*task.Job]int)
	g.ranked = nil
	g.cores = make([]sched.CoreDecision, g.m)
	g.taken = make([]bool, g.m)
	return nil
}

// Decide is the m = 1 entry point: the top-1 unwrapping of DecideMulti.
func (g *Global) Decide(now float64, ready []*task.Job) sched.Decision {
	d := g.DecideMulti(now, ready)
	return sched.Decision{Run: d.Cores[0].Run, Freq: d.Cores[0].Freq, Abort: d.Abort}
}

// DecideMulti aborts the infeasible, ranks the rest by UER at the
// reference f_max, and dispatches the top m with core stickiness: a job
// keeps its previous core whenever that core is still free, so
// migrations happen only when the ranking forces them.
func (g *Global) DecideMulti(now float64, ready []*task.Job) sched.MultiDecision {
	var aborts []*task.Job
	g.ranked = g.ranked[:0]
	for _, j := range ready {
		if !sched.JobFeasible(j, now, g.fmax) {
			aborts = append(aborts, j)
			continue
		}
		g.ranked = append(g.ranked, j)
	}
	// Highest UER first; sched.Less breaks ties so the order is total
	// and deterministic.
	sortByUER(now, g.ranked, g.fmax, g.model)
	n := len(g.ranked)
	if n > g.m {
		n = g.m
	}
	chosen := g.ranked[:n]
	for k := range g.cores {
		g.cores[k] = sched.CoreDecision{}
		g.taken[k] = false
	}
	// Pass 1 — stickiness: a chosen job whose previous core is free
	// stays there.
	pending := chosen[:0:0]
	for _, j := range chosen {
		if k, ok := g.last[j]; ok && !g.taken[k] {
			g.place(now, k, j)
			continue
		}
		pending = append(pending, j)
	}
	// Pass 2 — the rest fill free cores in index order (rank order, so
	// the highest-UER homeless job gets the lowest free core).
	k := 0
	for _, j := range pending {
		for g.taken[k] {
			k++
		}
		g.place(now, k, j)
	}
	// Prune stickiness entries of jobs no longer pending: ready holds
	// every unresolved job, so anything absent from it has resolved.
	if len(g.last) > len(ready) {
		alive := make(map[*task.Job]bool, len(ready))
		for _, j := range ready {
			alive[j] = true
		}
		for j := range g.last {
			if !alive[j] {
				delete(g.last, j)
			}
		}
	}
	return sched.MultiDecision{Cores: g.cores, Abort: aborts}
}

// place dispatches j on core k at the slowest table step that still
// finishes its remaining allocation by its critical time.
func (g *Global) place(now float64, k int, j *task.Job) {
	g.taken[k] = true
	g.last[j] = k
	f := g.tables[k].Max()
	if slack := j.AbsCritical - now; slack > 0 {
		f = g.tables[k].ClampSelect(j.EstimatedRemaining() / slack)
	}
	g.cores[k] = sched.CoreDecision{Run: j, Freq: f}
}

// sortByUER orders jobs by decreasing UER at frequency f, tie-broken by
// the deterministic critical-time total order.
func sortByUER(now float64, jobs []*task.Job, f float64, m energy.Model) {
	uer := make(map[*task.Job]float64, len(jobs))
	for _, j := range jobs {
		uer[j] = sched.UER(now, j, f, m)
	}
	sortJobs(jobs, func(a, b *task.Job) bool {
		ua, ub := uer[a], uer[b]
		if ua != ub {
			return ua > ub
		}
		return sched.Less(a, b)
	})
}

// sortJobs is an insertion sort: decision-time job counts are small and
// the jobs arrive mostly ordered from the previous decision, so this
// beats the allocation and indirection of sort.Slice on the hot path.
func sortJobs(jobs []*task.Job, less func(a, b *task.Job) bool) {
	for i := 1; i < len(jobs); i++ {
		j := jobs[i]
		k := i - 1
		for k >= 0 && less(j, jobs[k]) {
			jobs[k+1] = jobs[k]
			k--
		}
		jobs[k+1] = j
	}
}
