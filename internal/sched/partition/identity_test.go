package partition_test

// The m = 1 bit-identity guard: every case below runs the identical
// simulation twice — once with the bare uniprocessor EUA* scheduler,
// once with the same scheduler wrapped in partition.New(1, ...) — and
// requires the two results to be bit-identical with exact float64
// equality: all energy accounting, every job's resolution, and the full
// execution trace span by span. The grid mirrors the fast-path
// differential oracle (internal/sched/eua/differential_test.go): all
// three Table 1 applications, both TUF families, underload through heavy
// overload, scheduler options, fault plans, energy budgets, profiled
// tasks and engine extensions — over 200 cases, so the single-core
// partitioned engine path is pinned to the seed uniprocessor behavior
// across the whole covered configuration space.

import (
	"fmt"
	"testing"

	"github.com/euastar/euastar/internal/cpu"
	"github.com/euastar/euastar/internal/energy"
	"github.com/euastar/euastar/internal/engine"
	"github.com/euastar/euastar/internal/faults"
	"github.com/euastar/euastar/internal/profile"
	"github.com/euastar/euastar/internal/rng"
	"github.com/euastar/euastar/internal/sched"
	"github.com/euastar/euastar/internal/sched/eua"
	"github.com/euastar/euastar/internal/sched/partition"
	"github.com/euastar/euastar/internal/workload"
)

// identCase builds one engine configuration twice: build(wrapped) must
// return a fresh config each call (fresh scheduler, freshly synthesized
// task set) so the two runs share no mutable state.
type identCase struct {
	name  string
	build func(wrapped bool) engine.Config
}

// identityCases mirrors the differential oracle's case grid.
func identityCases() []identCase {
	var cases []identCase
	apps := []workload.App{workload.A1(), workload.A2(), workload.A3()}
	shapes := []workload.Shape{workload.Step, workload.LinearDecay}
	presets := []energy.Preset{energy.E1, energy.E2, energy.E3}

	add := func(name string, build func(wrapped bool) engine.Config) {
		cases = append(cases, identCase{name: name, build: build})
	}

	for ai, app := range apps {
		for si, shape := range shapes {
			for li, load := range []float64{0.4, 0.9, 1.3, 1.7} {
				for seed := uint64(1); seed <= 5; seed++ {
					app, shape, load, seed := app, shape, load, seed
					preset := presets[(ai+si+li+int(seed))%len(presets)]
					add(fmt.Sprintf("base/%s-%s-L%.1f-s%d", app.Name, shape, load, seed),
						func(wrapped bool) engine.Config {
							return identConfig(app, shape, load, seed, preset, wrapped)
						})
				}
			}
		}
	}

	options := []struct {
		name string
		opts []eua.Option
	}{
		{"noDVS", []eua.Option{eua.WithoutDVS()}},
		{"noUER", []eua.Option{eua.WithoutUERInsertion()}},
		{"noFo", []eua.Option{eua.WithoutFoClamp()}},
		{"noWin", []eua.Option{eua.WithoutWindowedDemand()}},
		{"noPhantom", []eua.Option{eua.WithoutPhantomReservation()}},
		{"strictBreak", []eua.Option{eua.WithStrictBreak()}},
		{"fastpath", []eua.Option{eua.WithFastPath()}},
	}
	for _, o := range options {
		for _, load := range []float64{0.8, 1.6} {
			for seed := uint64(1); seed <= 2; seed++ {
				o, load, seed := o, load, seed
				add(fmt.Sprintf("opt/%s-L%.1f-s%d", o.name, load, seed),
					func(wrapped bool) engine.Config {
						return identConfig(workload.A2(), workload.Step, load, seed, energy.E1, wrapped, o.opts...)
					})
			}
		}
	}

	plans := []string{
		"seed=7,overrun=0.15,overrun-factor=1.6",
		"seed=11,sticky=0.2,stall-prob=0.1,stall=0.0005",
		"seed=13,overrun=0.1,sticky=0.1,abort-spike=0.2,abort-spike-factor=5,bursts=true",
	}
	for pi, spec := range plans {
		for _, load := range []float64{0.8, 1.6} {
			for seed := uint64(1); seed <= 3; seed++ {
				spec, load, seed := spec, load, seed
				add(fmt.Sprintf("faults/p%d-L%.1f-s%d", pi, load, seed),
					func(wrapped bool) engine.Config {
						plan, err := faults.Parse(spec)
						if err != nil {
							panic(err)
						}
						cfg := identConfig(workload.A3(), workload.Step, load, seed, energy.E2, wrapped)
						cfg.Faults = plan
						cfg.AbortCost = 2000
						return cfg
					})
			}
		}
	}

	for _, budget := range []float64{0.5, 0.05} {
		for seed := uint64(1); seed <= 2; seed++ {
			for _, load := range []float64{0.9, 1.4} {
				budget, seed, load := budget, seed, load
				add(fmt.Sprintf("budget/b%.2f-L%.1f-s%d", budget, load, seed),
					func(wrapped bool) engine.Config {
						cfg := identConfig(workload.A2(), workload.Step, load, seed, energy.E1, wrapped,
							eua.WithBudgetAwareness(0))
						cfg.EnergyBudget = budget * 5e26
						return cfg
					})
			}
		}
	}

	for _, shape := range shapes {
		for seed := uint64(1); seed <= 3; seed++ {
			for _, load := range []float64{0.7, 1.2} {
				shape, seed, load := shape, seed, load
				add(fmt.Sprintf("profiled/%s-L%.1f-s%d", shape, load, seed),
					func(wrapped bool) engine.Config {
						cfg := identConfig(workload.A1(), shape, load, seed, energy.E1, wrapped)
						for i, tk := range cfg.Tasks {
							if i%2 == 0 {
								est, err := profile.New(tk.Demand.Mean*1.3, tk.Demand.Variance, 4)
								if err != nil {
									panic(err)
								}
								tk.Profiler = est
							}
						}
						return cfg
					})
			}
		}
	}

	extras := []struct {
		name string
		mod  func(*engine.Config)
	}{
		{"safemode", func(c *engine.Config) {
			c.AbortAtTermination = false
			c.SafeModeMisses = 3
			c.SafeModeShed = 0.5
		}},
		{"progress", func(c *engine.Config) { c.ProgressUtility = true }},
		{"idlepower", func(c *engine.Config) { c.IdleStaticPower = 0.05 }},
		{"noabort", func(c *engine.Config) { c.AbortAtTermination = false }},
	}
	for _, ex := range extras {
		for seed := uint64(1); seed <= 2; seed++ {
			for _, load := range []float64{0.8, 1.7} {
				ex, seed, load := ex, seed, load
				add(fmt.Sprintf("engine/%s-L%.1f-s%d", ex.name, load, seed),
					func(wrapped bool) engine.Config {
						cfg := identConfig(workload.A3(), workload.Step, load, seed, energy.E3, wrapped)
						ex.mod(&cfg)
						return cfg
					})
			}
		}
	}

	return cases
}

// identConfig assembles one run with either the bare EUA* scheduler or
// the same construction wrapped in a 1-core partitioned meta-scheduler.
// Both partitioning policies go through the same pass-through code with
// m = 1, so alternating the policy with the seed costs no coverage.
func identConfig(app workload.App, shape workload.Shape, load float64, seed uint64, preset energy.Preset, wrapped bool, opts ...eua.Option) engine.Config {
	ft := cpu.PowerNowK6()
	model, err := energy.NewPreset(preset, ft.Max())
	if err != nil {
		panic(err)
	}
	ts := app.MustSynthesize(rng.New(seed*0x9e3779b9), workload.Options{Shape: shape})
	ts = ts.ScaleToLoad(load, ft.Max())
	var s sched.Scheduler = eua.New(opts...)
	if wrapped {
		policy := partition.FirstFit
		if seed%2 == 0 {
			policy = partition.WorstFit
		}
		s = partition.New(1, policy, func() sched.Scheduler { return eua.New(opts...) })
	}
	return engine.Config{
		Tasks:              ts,
		Scheduler:          s,
		Freqs:              ft,
		Energy:             model,
		Horizon:            0.5,
		Seed:               seed,
		AbortAtTermination: true,
		RecordTrace:        true,
	}
}

// requireIdentical compares two results field by field with exact
// equality. Any difference means the 1-core wrapper changed engine
// behavior — a bit-identity bug by definition.
func requireIdentical(t *testing.T, ref, got *engine.Result) {
	t.Helper()
	type scalar struct {
		name     string
		ref, got float64
	}
	scalars := []scalar{
		{"TotalEnergy", ref.TotalEnergy, got.TotalEnergy},
		{"Cycles", ref.Cycles, got.Cycles},
		{"BusyTime", ref.BusyTime, got.BusyTime},
		{"EndTime", ref.EndTime, got.EndTime},
		{"IdleEnergy", ref.IdleEnergy, got.IdleEnergy},
		{"AbortCycles", ref.AbortCycles, got.AbortCycles},
		{"DepletedAt", ref.DepletedAt, got.DepletedAt},
	}
	for _, s := range scalars {
		if s.ref != s.got {
			t.Fatalf("%s: bare %v, wrapped %v", s.name, s.ref, s.got)
		}
	}
	type count struct {
		name     string
		ref, got int
	}
	counts := []count{
		{"Switches", ref.Switches, got.Switches},
		{"Decisions", ref.Decisions, got.Decisions},
		{"Events", ref.Events, got.Events},
		{"Preemptions", ref.Preemptions, got.Preemptions},
		{"Migrations", ref.Migrations, got.Migrations},
		{"Cores", ref.Cores, got.Cores},
		{"FaultEvents", ref.FaultEvents, got.FaultEvents},
		{"SafeModeEntries", ref.SafeModeEntries, got.SafeModeEntries},
		{"JobsShed", ref.JobsShed, got.JobsShed},
		{"Jobs", len(ref.Jobs), len(got.Jobs)},
		{"TraceSpans", len(ref.Trace), len(got.Trace)},
	}
	for _, c := range counts {
		if c.ref != c.got {
			t.Fatalf("%s: bare %d, wrapped %d", c.name, c.ref, c.got)
		}
	}
	if ref.Depleted != got.Depleted {
		t.Fatalf("Depleted: bare %v, wrapped %v", ref.Depleted, got.Depleted)
	}
	for i := range ref.Jobs {
		a, b := ref.Jobs[i], got.Jobs[i]
		if a.Task.ID != b.Task.ID || a.Index != b.Index {
			t.Fatalf("job %d: identity mismatch %v vs %v", i, a, b)
		}
		if a.ActualCycles != b.ActualCycles || a.Arrival != b.Arrival {
			t.Fatalf("job %v: realized workload differs — harness bug", a)
		}
		if a.State != b.State {
			t.Fatalf("job %v: state %v vs %v", a, a.State, b.State)
		}
		if a.FinishedAt != b.FinishedAt {
			t.Fatalf("job %v: finished at %v vs %v", a, a.FinishedAt, b.FinishedAt)
		}
		if a.Utility != b.Utility {
			t.Fatalf("job %v: utility %v vs %v", a, a.Utility, b.Utility)
		}
		if a.Executed != b.Executed {
			t.Fatalf("job %v: executed %v vs %v", a, a.Executed, b.Executed)
		}
		if a.AbortReason != b.AbortReason {
			t.Fatalf("job %v: abort reason %q vs %q", a, a.AbortReason, b.AbortReason)
		}
	}
	for i := range ref.Trace {
		a, b := ref.Trace[i], got.Trace[i]
		if a.Job.Task.ID != b.Job.Task.ID || a.Job.Index != b.Job.Index {
			t.Fatalf("span %d: job %v vs %v", i, a.Job, b.Job)
		}
		if a.Start != b.Start || a.End != b.End || a.Frequency != b.Frequency || a.Cycles != b.Cycles || a.Core != b.Core {
			t.Fatalf("span %d (job %v): [%v,%v]@%v/%v on core %d vs [%v,%v]@%v/%v on core %d",
				i, a.Job, a.Start, a.End, a.Frequency, a.Cycles, a.Core,
				b.Start, b.End, b.Frequency, b.Cycles, b.Core)
		}
	}
}

func TestSingleCoreBitIdentity(t *testing.T) {
	cases := identityCases()
	if len(cases) < 200 {
		t.Fatalf("identity grid shrank to %d cases; the suite requires at least 200", len(cases))
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			ref, err := engine.Run(c.build(false))
			if err != nil {
				t.Fatalf("bare run: %v", err)
			}
			wrapped, err := engine.Run(c.build(true))
			if err != nil {
				t.Fatalf("wrapped run: %v", err)
			}
			requireIdentical(t, ref, wrapped)
		})
	}
}
