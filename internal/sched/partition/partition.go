// Package partition generalizes the repository's uniprocessor schemes to
// m DVS cores. Partitioned wraps any of the seven schemes: it assigns
// tasks to cores once at Init — bin packing on the Cantelli-allocated
// demand rate C_i/D_i, with internal/admission's per-scheme utilization
// bound as the bin-capacity test — and then runs one independent
// instance of the wrapped scheme per core, so every per-core schedule is
// exactly what the uniprocessor scheme would build for that core's task
// subset. Global (global.go) is the contrasting design point: one shared
// ready queue dispatched top-m by UER, with job migration allowed.
//
// With m = 1 Partitioned is a pure pass-through — Name, Init and Decide
// delegate verbatim to the single wrapped instance — so uniprocessor
// results through the wrapper are bit-identical to the bare scheme.
package partition

import (
	"fmt"
	"sort"

	"github.com/euastar/euastar/internal/admission"
	"github.com/euastar/euastar/internal/cpu"
	"github.com/euastar/euastar/internal/sched"
	"github.com/euastar/euastar/internal/task"
)

// Policy selects the bin-packing heuristic for task→core assignment.
type Policy string

const (
	// FirstFit places each task on the lowest-indexed core whose
	// admission test still accepts the core's task set with it added.
	FirstFit Policy = "ff"
	// WorstFit places each task on the admissible core with the most
	// remaining capacity (lowest utilization), balancing load so each
	// core keeps DVS headroom to slow down.
	WorstFit Policy = "wf"
)

// ParsePolicy maps the -partition flag values onto a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case FirstFit, WorstFit:
		return Policy(s), nil
	}
	return "", fmt.Errorf("partition: unknown policy %q (want %q or %q)", s, FirstFit, WorstFit)
}

// eventObserver and budgetObserver mirror the engine's optional
// scheduler extensions structurally, so the wrapper can forward
// lifecycle and budget notifications to its sub-schedulers without
// importing the engine package.
type eventObserver interface {
	OnRelease(now float64, j *task.Job)
	OnComplete(now float64, j *task.Job)
}

type budgetObserver interface {
	OnEnergy(spent, budget float64)
}

// Partitioned is the partitioned meta-scheduler. Build one with New;
// the zero value is unusable.
type Partitioned struct {
	m       int
	policy  Policy
	factory func() sched.Scheduler

	// probe is one factory instance made at construction time: it names
	// the wrapped scheme before Init and doubles as the single
	// sub-scheduler of the m = 1 pass-through.
	probe sched.Scheduler

	subs   []sched.Scheduler // per-core instances; nil for task-less cores
	assign map[int]int       // task ID → core
	bufs   [][]*task.Job     // reusable per-core ready buffers
	cores  []sched.CoreDecision
}

// New builds a partitioned wrapper running m instances of the scheme the
// factory produces. The factory is invoked once per non-empty core (plus
// once at construction for the scheme name); it must return a fresh
// scheduler each call — schedulers carry per-run state — and is the
// place to apply per-instance options such as EUA*'s fast path.
func New(m int, policy Policy, factory func() sched.Scheduler) *Partitioned {
	if m < 1 {
		panic(fmt.Sprintf("partition: core count %d must be at least 1", m))
	}
	if policy != FirstFit && policy != WorstFit {
		panic(fmt.Sprintf("partition: unknown policy %q", policy))
	}
	if factory == nil {
		panic("partition: nil scheduler factory")
	}
	return &Partitioned{m: m, policy: policy, factory: factory, probe: factory()}
}

// Name identifies the configuration: the bare scheme name with m = 1
// (the pass-through), otherwise e.g. "EUA*/P4ff".
func (p *Partitioned) Name() string {
	if p.m == 1 {
		return p.probe.Name()
	}
	return fmt.Sprintf("%s/P%d%s", p.probe.Name(), p.m, p.policy)
}

// Cores returns the core count the wrapper was built for.
func (p *Partitioned) Cores() int { return p.m }

// Init partitions the task set and initializes one wrapped instance per
// non-empty core. With m = 1 it initializes the single instance on the
// unmodified context.
func (p *Partitioned) Init(ctx *sched.Context) error {
	if p.m == 1 {
		p.subs = []sched.Scheduler{p.probe}
		p.assign = nil // every job routes to core 0
		return p.probe.Init(ctx)
	}
	if err := ctx.Validate(); err != nil {
		return err
	}
	tables := ctx.CoreTables(p.m)
	coreTasks := p.partition(ctx.Tasks, tables)
	p.subs = make([]sched.Scheduler, p.m)
	p.bufs = make([][]*task.Job, p.m)
	p.cores = make([]sched.CoreDecision, p.m)
	for k := range coreTasks {
		if len(coreTasks[k]) == 0 {
			continue // task-less core: stays idle, needs no scheduler
		}
		sub := p.factory()
		sctx := &sched.Context{
			Tasks:     coreTasks[k],
			Freqs:     tables[k],
			Energy:    ctx.Energy,
			Telemetry: ctx.Telemetry,
		}
		if err := sub.Init(sctx); err != nil {
			return fmt.Errorf("partition: core %d init: %w", k, err)
		}
		p.subs[k] = sub
	}
	return nil
}

// partition assigns tasks to cores and records the assignment. Tasks are
// packed in decreasing order of allocated demand rate C_i/D_i (the
// MinFrequency each task needs alone), the classic decreasing-size
// ordering that tightens both heuristics; ties break on task ID so the
// assignment is deterministic. The capacity test for "task t fits core
// k" is the admission analyzer's per-scheme sufficient bound on the
// core's table — a task set the analyzer accepts is schedulable by the
// deadline-ordered schemes at f_max. A task no core admits falls back to
// the least-utilized core: overload then degrades that one core's
// accrued utility instead of failing the run.
func (p *Partitioned) partition(ts task.Set, tables []cpu.FrequencyTable) []task.Set {
	order := append(task.Set(nil), ts...)
	sort.Slice(order, func(i, j int) bool {
		fi, fj := order[i].MinFrequency(), order[j].MinFrequency()
		if fi != fj {
			return fi > fj
		}
		return order[i].ID < order[j].ID
	})
	probeName := p.probe.Name()
	coreTasks := make([]task.Set, p.m)
	util := make([]float64, p.m) // Σ C_i/D_i / f_max per core
	p.assign = make(map[int]int, len(order))
	for _, t := range order {
		fits := func(k int) bool {
			cand := append(append(task.Set(nil), coreTasks[k]...), t)
			res, err := admission.Analyze(cand, tables[k], probeName)
			return err == nil && res.Verdict == admission.Accept
		}
		best := -1
		switch p.policy {
		case FirstFit:
			for k := 0; k < p.m; k++ {
				if fits(k) {
					best = k
					break
				}
			}
		case WorstFit:
			for k := 0; k < p.m; k++ {
				if fits(k) && (best < 0 || util[k] < util[best]) {
					best = k
				}
			}
		}
		if best < 0 {
			// Overload fallback: least-utilized core, lowest index on ties.
			best = 0
			for k := 1; k < p.m; k++ {
				if util[k] < util[best] {
					best = k
				}
			}
		}
		coreTasks[best] = append(coreTasks[best], t)
		util[best] += t.MinFrequency() / tables[best].Max()
		p.assign[t.ID] = best
	}
	return coreTasks
}

// Assignment returns the task→core map built by Init (nil before Init or
// with m = 1, where everything runs on core 0). The returned map is the
// wrapper's own; callers must not mutate it.
func (p *Partitioned) Assignment() map[int]int { return p.assign }

// Decide is the uniprocessor entry point: with m = 1 it delegates
// verbatim to the wrapped scheme. The engine never calls it on
// multi-core runs, and calling it there is a programming error.
func (p *Partitioned) Decide(now float64, ready []*task.Job) sched.Decision {
	if p.m != 1 {
		panic(fmt.Sprintf("partition: Decide called on %d-core scheduler", p.m))
	}
	return p.subs[0].Decide(now, ready)
}

// DecideMulti routes the shared ready queue through the Init-time
// assignment and lets each core's wrapped instance decide over its own
// jobs only — tasks never migrate under partitioning.
func (p *Partitioned) DecideMulti(now float64, ready []*task.Job) sched.MultiDecision {
	if p.m == 1 {
		d := p.subs[0].Decide(now, ready)
		return sched.MultiDecision{
			Cores: []sched.CoreDecision{{Run: d.Run, Freq: d.Freq}},
			Abort: d.Abort,
		}
	}
	for k := range p.bufs {
		p.bufs[k] = p.bufs[k][:0]
	}
	for _, j := range ready {
		k := p.assign[j.Task.ID]
		p.bufs[k] = append(p.bufs[k], j)
	}
	var aborts []*task.Job
	for k := range p.cores {
		p.cores[k] = sched.CoreDecision{}
		if p.subs[k] == nil || len(p.bufs[k]) == 0 {
			continue
		}
		d := p.subs[k].Decide(now, p.bufs[k])
		p.cores[k] = sched.CoreDecision{Run: d.Run, Freq: d.Freq}
		aborts = append(aborts, d.Abort...)
	}
	return sched.MultiDecision{Cores: p.cores, Abort: aborts}
}

// OnRelease forwards a job release to the wrapped instance of the job's
// core, if that instance tracks lifecycle events.
func (p *Partitioned) OnRelease(now float64, j *task.Job) {
	if sub, ok := p.subOf(j).(eventObserver); ok {
		sub.OnRelease(now, j)
	}
}

// OnComplete forwards a job completion like OnRelease.
func (p *Partitioned) OnComplete(now float64, j *task.Job) {
	if sub, ok := p.subOf(j).(eventObserver); ok {
		sub.OnComplete(now, j)
	}
}

// OnEnergy forwards the system-wide budget report to every wrapped
// instance that rations energy. Cores share the one battery, so each
// instance sees the global spend, not a per-core share.
func (p *Partitioned) OnEnergy(spent, budget float64) {
	for _, sub := range p.subs {
		if bo, ok := sub.(budgetObserver); ok {
			bo.OnEnergy(spent, budget)
		}
	}
}

// subOf returns the wrapped instance owning j's task (core 0 with m = 1).
func (p *Partitioned) subOf(j *task.Job) sched.Scheduler {
	if p.assign == nil {
		return p.subs[0]
	}
	return p.subs[p.assign[j.Task.ID]]
}
