package sched

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/euastar/euastar/internal/cpu"
	"github.com/euastar/euastar/internal/energy"
	"github.com/euastar/euastar/internal/rng"
	"github.com/euastar/euastar/internal/task"
	"github.com/euastar/euastar/internal/tuf"
	"github.com/euastar/euastar/internal/uam"
)

func mkTask(id int, p float64) *task.Task {
	return &task.Task{
		ID: id, Arrival: uam.Spec{A: 1, P: p},
		TUF:    tuf.NewStep(10, p),
		Demand: task.Demand{Mean: 1e6, Variance: 0},
		Req:    task.Requirement{Nu: 1, Rho: 0.9},
	}
}

func mkJob(t *task.Task, idx int, at float64) *task.Job {
	j := task.NewJob(t, idx, at, rng.New(uint64(idx)+1))
	j.ActualCycles = t.Demand.Mean
	return j
}

func TestContextValidate(t *testing.T) {
	ft := cpu.PowerNowK6()
	good := &Context{
		Tasks:  task.Set{mkTask(1, 0.1)},
		Freqs:  ft,
		Energy: energy.MustPreset(energy.E1, ft.Max()),
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	var nilCtx *Context
	if err := nilCtx.Validate(); err == nil {
		t.Fatal("nil context accepted")
	}
	bad := *good
	bad.Freqs = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("nil freqs accepted")
	}
	bad2 := *good
	bad2.Energy = energy.Model{}
	if err := bad2.Validate(); err == nil {
		t.Fatal("zero energy model accepted")
	}
}

func TestByCriticalTime(t *testing.T) {
	ta, tb := mkTask(1, 0.1), mkTask(2, 0.05)
	j1 := mkJob(ta, 0, 0)   // D^a = 0.1
	j2 := mkJob(tb, 0, 0)   // D^a = 0.05
	j3 := mkJob(ta, 1, 0.1) // D^a = 0.2
	jobs := []*task.Job{j3, j1, j2}
	ByCriticalTime(jobs)
	if jobs[0] != j2 || jobs[1] != j1 || jobs[2] != j3 {
		t.Fatalf("order = %v", jobs)
	}
}

func TestByCriticalTimeTieBreak(t *testing.T) {
	ta, tb := mkTask(1, 0.1), mkTask(2, 0.1)
	j1, j2 := mkJob(ta, 0, 0), mkJob(tb, 0, 0) // identical D^a
	jobs := []*task.Job{j2, j1}
	ByCriticalTime(jobs)
	if jobs[0] != j1 || jobs[1] != j2 {
		t.Fatal("tie-break by task ID failed")
	}
}

func TestFeasible(t *testing.T) {
	tk := mkTask(1, 0.1) // c = 1e6 cycles, 1ms at f_m
	fm := 1000e6
	j1, j2 := mkJob(tk, 0, 0), mkJob(tk, 1, 0)
	j2.Termination = 0.1
	// Two 1ms jobs, both due at 0.1: trivially feasible.
	if !Feasible([]*task.Job{j1, j2}, 0, fm) {
		t.Fatal("feasible schedule rejected")
	}
	// Start too late: 99.5ms leaves room for only one job.
	if Feasible([]*task.Job{j1, j2}, 0.0995, fm) {
		t.Fatal("infeasible schedule accepted")
	}
	if !Feasible(nil, 0, fm) {
		t.Fatal("empty schedule infeasible")
	}
}

func TestFeasibleCumulative(t *testing.T) {
	// Feasibility is cumulative, so order matters: the tight job (99.5 ms
	// of work, due at 100 ms) must run first; behind the slack job the
	// chain pushes it past its termination time.
	slack := mkTask(1, 0.2) // 1 ms of work, due at 200 ms
	big := mkTask(2, 0.1)
	big.Demand = task.Demand{Mean: 99.5e6, Variance: 0} // 99.5 ms at f_m
	j1 := mkJob(big, 0, 0)
	j2 := mkJob(slack, 0, 0)
	fm := 1000e6
	if !Feasible([]*task.Job{j1, j2}, 0, fm) {
		t.Fatal("tight-first schedule rejected")
	}
	if Feasible([]*task.Job{j2, j1}, 0, fm) {
		t.Fatal("slack-first schedule accepted")
	}
}

func TestJobFeasible(t *testing.T) {
	tk := mkTask(1, 0.1)
	j := mkJob(tk, 0, 0)
	fm := 1000e6
	if !JobFeasible(j, 0, fm) {
		t.Fatal("fresh job infeasible")
	}
	if JobFeasible(j, 0.0999, fm) {
		t.Fatal("doomed job feasible")
	}
	// Exactly at the boundary: still feasible (completes at termination).
	if !JobFeasible(j, 0.099, fm) {
		t.Fatal("boundary job infeasible")
	}
}

func TestInsertByCritical(t *testing.T) {
	ta, tb, tc := mkTask(1, 0.05), mkTask(2, 0.1), mkTask(3, 0.2)
	j1, j2, j3 := mkJob(ta, 0, 0), mkJob(tb, 0, 0), mkJob(tc, 0, 0)
	var order []*task.Job
	order = InsertByCritical(order, j2)
	order = InsertByCritical(order, j3)
	order = InsertByCritical(order, j1)
	if order[0] != j1 || order[1] != j2 || order[2] != j3 {
		t.Fatalf("order wrong")
	}
}

func TestInsertByCriticalAfterEqual(t *testing.T) {
	// Equal keys: the new entry goes after existing ones (Algorithm 1's
	// insert semantics).
	ta := mkTask(1, 0.1)
	tb := mkTask(2, 0.1)
	j1, j2 := mkJob(ta, 0, 0), mkJob(tb, 0, 0)
	order := InsertByCritical(nil, j1)
	order = InsertByCritical(order, j2)
	if order[0] != j1 || order[1] != j2 {
		t.Fatal("equal-key insert not after existing")
	}
}

func TestQuickInsertKeepsSorted(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%30) + 1
		src := rng.New(seed)
		var order []*task.Job
		for i := 0; i < n; i++ {
			tk := mkTask(i+1, src.Uniform(0.01, 0.5))
			order = InsertByCritical(order, mkJob(tk, 0, src.Uniform(0, 1)))
		}
		for i := 1; i < len(order); i++ {
			if order[i].AbsCritical < order[i-1].AbsCritical {
				return false
			}
		}
		return len(order) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEarliestByTask(t *testing.T) {
	ta, tb := mkTask(1, 0.1), mkTask(2, 0.1)
	j1 := mkJob(ta, 0, 0)
	j2 := mkJob(ta, 1, 0.02)
	j3 := mkJob(tb, 0, 0.01)
	views := EarliestByTask([]*task.Job{j2, j3, j1})
	if len(views) != 2 {
		t.Fatalf("views = %v", views)
	}
	if v := views[1]; v.Earliest != j1 || v.Pending != 2 {
		t.Fatalf("task 1 view = %+v", v)
	}
	if v := views[2]; v.Earliest != j3 || v.Pending != 1 {
		t.Fatalf("task 2 view = %+v", v)
	}
}

func TestWindowRemaining(t *testing.T) {
	tk := mkTask(1, 0.1)
	tk.Arrival.A = 3
	c := tk.CycleAllocation()
	j1, j2 := mkJob(tk, 0, 0), mkJob(tk, 1, 0)
	j1.Executed = c / 2
	// a_i = 3: the window may still carry 2 more full instances beyond the
	// earliest, regardless of how many have arrived so far.
	v := TaskView{Earliest: j1, Pending: 2}
	want := c/2 + 2*c
	if got := WindowRemaining(tk, v); math.Abs(got-want) > 1e-6 {
		t.Fatalf("C^r = %v, want %v", got, want)
	}
	// Cap at a_i instances even with more pending.
	v5 := TaskView{Earliest: j2, Pending: 5}
	wantCap := c + 2*c
	if got := WindowRemaining(tk, v5); math.Abs(got-wantCap) > 1e-6 {
		t.Fatalf("capped C^r = %v, want %v", got, wantCap)
	}
	if got := WindowRemaining(tk, TaskView{}); got != 0 {
		t.Fatalf("empty view C^r = %v", got)
	}
}

func TestLookAheadFrequencyEmpty(t *testing.T) {
	if f := LookAheadFrequency(0, 1000e6, nil); f != 0 {
		t.Fatalf("empty → %v", f)
	}
}

func TestLookAheadFrequencySingleTask(t *testing.T) {
	// One task, all cycles due at its critical time: required frequency is
	// exactly C^r / (D^a − now).
	e := LookAheadEntry{AbsCritical: 0.1, Remaining: 1e6, StaticUtil: 1e7}
	got := LookAheadFrequency(0, 1000e6, []LookAheadEntry{e})
	if math.Abs(got-1e7) > 1 {
		t.Fatalf("f = %v, want 1e7", got)
	}
}

func TestLookAheadFrequencyDefersLaterWork(t *testing.T) {
	fm := 1000e6
	// Task A due at 10ms with 1e6 cycles; task B due at 100ms with 50e6
	// cycles. B's work can be executed after 10ms at a modest rate, so the
	// required frequency should be far below (1e6+50e6)/0.01.
	entries := []LookAheadEntry{
		{AbsCritical: 0.01, Remaining: 1e6, StaticUtil: 1e6 / 0.01},
		{AbsCritical: 0.1, Remaining: 50e6, StaticUtil: 50e6 / 0.1},
	}
	got := LookAheadFrequency(0, fm, entries)
	// Must at least cover A's own demand…
	if got < 1e6/0.01 {
		t.Fatalf("f = %v below task A's need", got)
	}
	// …but far below executing everything before 10ms.
	if got > 0.5*(51e6/0.01) {
		t.Fatalf("f = %v, deferral ineffective", got)
	}
}

func TestLookAheadFrequencyOverloadUnbounded(t *testing.T) {
	// Work already due: infinite requirement (callers clamp to f_m).
	entries := []LookAheadEntry{{AbsCritical: 0.05, Remaining: 1e6, StaticUtil: 1e7}}
	got := LookAheadFrequency(0.05, 1000e6, entries)
	if !math.IsInf(got, 1) {
		t.Fatalf("f = %v, want +Inf", got)
	}
	got2 := LookAheadFrequency(0.06, 1000e6, entries)
	if !math.IsInf(got2, 1) {
		t.Fatalf("past-due f = %v, want +Inf", got2)
	}
}

func TestLookAheadFrequencyEqualCriticalTimes(t *testing.T) {
	// Two tasks sharing the earliest critical time ("which can occur,
	// especially during overloads"): both remainders are non-deferrable.
	entries := []LookAheadEntry{
		{AbsCritical: 0.1, Remaining: 2e6, StaticUtil: 2e7},
		{AbsCritical: 0.1, Remaining: 3e6, StaticUtil: 3e7},
	}
	got := LookAheadFrequency(0, 1000e6, entries)
	if math.Abs(got-5e7) > 1 {
		t.Fatalf("f = %v, want 5e7", got)
	}
}

func TestLookAheadFrequencyZeroRemaining(t *testing.T) {
	entries := []LookAheadEntry{
		{AbsCritical: 0.1, Remaining: 0, StaticUtil: 1e7},
		{AbsCritical: 0.2, Remaining: 0, StaticUtil: 1e7},
	}
	if got := LookAheadFrequency(0, 1000e6, entries); got != 0 {
		t.Fatalf("f = %v, want 0", got)
	}
}

func TestQuickLookAheadCoversEarliestDemand(t *testing.T) {
	// Whatever the mix, the result must cover the non-deferrable work of
	// the earliest-critical-time task executed alone.
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%5) + 1
		src := rng.New(seed)
		now := 0.0
		entries := make([]LookAheadEntry, n)
		for i := range entries {
			d := src.Uniform(0.01, 0.3)
			rem := src.Uniform(1e5, 5e7)
			entries[i] = LookAheadEntry{AbsCritical: d, Remaining: rem, StaticUtil: rem / d}
		}
		got := LookAheadFrequency(now, 1000e6, entries)
		// Lower bound: the earliest task's own remaining over its window.
		minD, minRem := math.Inf(1), 0.0
		for _, e := range entries {
			if e.AbsCritical < minD {
				minD, minRem = e.AbsCritical, e.Remaining
			}
		}
		return got >= minRem/(minD-now)-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLookAheadMonotoneInRemaining(t *testing.T) {
	// Adding work to any task cannot reduce the required frequency.
	f := func(seed uint64) bool {
		src := rng.New(seed)
		entries := []LookAheadEntry{
			{AbsCritical: src.Uniform(0.02, 0.1), Remaining: src.Uniform(1e5, 1e7)},
			{AbsCritical: src.Uniform(0.02, 0.1), Remaining: src.Uniform(1e5, 1e7)},
		}
		for i := range entries {
			entries[i].StaticUtil = entries[i].Remaining / entries[i].AbsCritical
		}
		base := LookAheadFrequency(0, 1000e6, entries)
		grown := append([]LookAheadEntry(nil), entries...)
		grown[0].Remaining *= 1.5
		more := LookAheadFrequency(0, 1000e6, grown)
		return more >= base-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookAheadFrequency(b *testing.B) {
	src := rng.New(3)
	entries := make([]LookAheadEntry, 18)
	for i := range entries {
		d := src.Uniform(0.01, 0.3)
		rem := src.Uniform(1e5, 5e7)
		entries[i] = LookAheadEntry{AbsCritical: d, Remaining: rem, StaticUtil: rem / d}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LookAheadFrequency(0, 1000e6, entries)
	}
}

func BenchmarkFeasible(b *testing.B) {
	jobs := make([]*task.Job, 18)
	for i := range jobs {
		jobs[i] = mkJob(mkTask(i+1, 0.02*float64(i+1)), 0, 0)
	}
	ByCriticalTime(jobs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Feasible(jobs, 0, 1000e6)
	}
}
