// Package gus implements GUS — Generic Utility Scheduling (Li &
// Ravindran) — the utility-accrual algorithm of the same research line
// that EUA* descends from, included as an additional UA baseline that is
// *dependency-aware*: a job's figure of merit is the Potential Utility
// Density (PUD) of its whole blocking chain, the utility the system gains
// per cycle by executing everything needed to let the job finish.
//
// GUS runs at the highest frequency (no DVS); compared against EUA* it
// isolates what the energy term and frequency scaling add on top of
// chain-aware UA sequencing.
package gus

import (
	"fmt"

	"github.com/euastar/euastar/internal/sched"
	"github.com/euastar/euastar/internal/task"
)

// Scheduler is dependency-aware GUS at fixed f_m.
type Scheduler struct {
	ctx *sched.Context
	ins *sched.Instruments
}

// New returns a GUS scheduler.
func New() *Scheduler { return &Scheduler{} }

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string { return "GUS" }

// Init implements sched.Scheduler.
func (s *Scheduler) Init(ctx *sched.Context) error {
	if err := ctx.Validate(); err != nil {
		return fmt.Errorf("gus: %w", err)
	}
	s.ctx = ctx
	s.ins = ctx.Instruments(s.Name())
	return nil
}

// chain returns the job's blocking chain (the job itself first, then the
// holders it transitively waits on, using the engine-maintained BlockedBy
// pointers), stopping on cycles.
func chain(j *task.Job) []*task.Job {
	var out []*task.Job
	seen := map[*task.Job]bool{}
	for j != nil && !seen[j] {
		seen[j] = true
		out = append(out, j)
		j = j.BlockedBy
	}
	return out
}

// pud returns the chain's potential utility density at time now: the
// summed utility of every job the chain completes, divided by the cycles
// that must be executed to get there.
func (s *Scheduler) pud(now float64, j *task.Job) float64 {
	fm := s.ctx.Freqs.Max()
	cycles, utility := 0.0, 0.0
	// The chain executes holders first; all of it must run before j
	// finishes. Estimate the completion instant from the aggregate work.
	for _, link := range chain(j) {
		cycles += link.EstimatedRemaining()
	}
	done := now + cycles/fm
	for _, link := range chain(j) {
		utility += link.UtilityAt(done)
	}
	if cycles <= 0 {
		return 0
	}
	return utility / cycles
}

// Decide implements sched.Scheduler: abort infeasible jobs, rank the rest
// by chain PUD, and greedily build a feasible critical-time-ordered
// schedule (the GUS construction mirrors DASA's with the chain-aware
// metric).
func (s *Scheduler) Decide(now float64, ready []*task.Job) sched.Decision {
	start := s.ins.Begin()
	d := s.decide(now, ready)
	s.ins.End(start, len(ready), d.Freq)
	return d
}

func (s *Scheduler) decide(now float64, ready []*task.Job) sched.Decision {
	fm := s.ctx.Freqs.Max()
	var live []*task.Job
	var aborts []*task.Job
	density := make(map[*task.Job]float64, len(ready))
	for _, j := range ready {
		if !sched.JobFeasible(j, now, fm) {
			j.AbortReason = "infeasible at f_m"
			aborts = append(aborts, j)
			continue
		}
		live = append(live, j)
		density[j] = s.pud(now, j)
	}
	if len(live) == 0 {
		return sched.Decision{Abort: aborts}
	}
	sched.ByCriticalTime(live)
	for i := 1; i < len(live); i++ {
		j := live[i]
		k := i - 1
		for k >= 0 && density[live[k]] < density[j] {
			live[k+1] = live[k]
			k--
		}
		live[k+1] = j
	}
	var order []*task.Job
	iters := 0
	for _, j := range live {
		if density[j] <= 0 {
			break
		}
		iters++
		tent := sched.InsertByCritical(append([]*task.Job(nil), order...), j)
		if sched.Feasible(tent, now, fm) {
			order = tent
		}
	}
	s.ins.FeasibilityIterations(iters)
	if len(order) == 0 {
		return sched.Decision{Abort: aborts}
	}
	return sched.Decision{Run: order[0], Freq: fm, Abort: aborts}
}
