package gus_test

import (
	"testing"

	"github.com/euastar/euastar/internal/cpu"
	"github.com/euastar/euastar/internal/energy"
	"github.com/euastar/euastar/internal/engine"
	"github.com/euastar/euastar/internal/metrics"
	"github.com/euastar/euastar/internal/rng"
	"github.com/euastar/euastar/internal/sched"
	"github.com/euastar/euastar/internal/sched/edf"
	"github.com/euastar/euastar/internal/sched/gus"
	"github.com/euastar/euastar/internal/task"
	"github.com/euastar/euastar/internal/tuf"
	"github.com/euastar/euastar/internal/uam"
)

func stepTask(id int, p, height, mean float64) *task.Task {
	return &task.Task{
		ID: id, Arrival: uam.Spec{A: 1, P: p},
		TUF:    tuf.NewStep(height, p),
		Demand: task.Demand{Mean: mean, Variance: 0},
		Req:    task.Requirement{Nu: 1, Rho: 0.9},
	}
}

func ctx(ts task.Set) *sched.Context {
	ft := cpu.PowerNowK6()
	return &sched.Context{Tasks: ts, Freqs: ft, Energy: energy.MustPreset(energy.E1, ft.Max())}
}

func TestNameAndInit(t *testing.T) {
	s := gus.New()
	if s.Name() != "GUS" {
		t.Fatal("name")
	}
	if err := s.Init(&sched.Context{}); err == nil {
		t.Fatal("empty context accepted")
	}
	if err := s.Init(ctx(task.Set{stepTask(1, 0.1, 10, 1e6)})); err != nil {
		t.Fatal(err)
	}
}

func TestPrefersDensity(t *testing.T) {
	hi := stepTask(1, 0.1, 100, 60e6)
	lo := stepTask(2, 0.1, 1, 60e6)
	s := gus.New()
	if err := s.Init(ctx(task.Set{hi, lo})); err != nil {
		t.Fatal(err)
	}
	jHi := task.NewJob(hi, 0, 0, rng.New(1))
	jLo := task.NewJob(lo, 0, 0, rng.New(2))
	if d := s.Decide(0, []*task.Job{jLo, jHi}); d.Run != jHi {
		t.Fatalf("ran %v", d.Run)
	}
}

// TestChainPUDPrefersUnblockingPath: a low-utility holder that unblocks a
// high-utility waiter must outrank a medium independent job, because the
// waiter's utility counts toward the holder's chain.
func TestChainPUDPrefersUnblockingPath(t *testing.T) {
	holder := stepTask(1, 0.4, 1, 10e6) // tiny own utility
	waiter := stepTask(2, 0.3, 100, 10e6)
	indep := stepTask(3, 0.35, 30, 10e6)
	s := gus.New()
	if err := s.Init(ctx(task.Set{holder, waiter, indep})); err != nil {
		t.Fatal(err)
	}
	jHold := task.NewJob(holder, 0, 0, rng.New(1))
	jWait := task.NewJob(waiter, 0, 0, rng.New(2))
	jInd := task.NewJob(indep, 0, 0, rng.New(3))
	// Simulate engine-maintained blocking: the waiter waits on the holder.
	jWait.BlockedBy = jHold

	d := s.Decide(0, []*task.Job{jHold, jWait, jInd})
	// The waiter's chain (waiter+holder: utility 101 over 20e6 cycles,
	// PUD ≈ 5.05e-6) outranks the independent job (30/10e6 = 3e-6) and the
	// bare holder (1/10e6). The schedule is critical-time ordered among
	// inserted jobs, so the earliest critical time among the top chains
	// runs first; what matters is the independent job does NOT win.
	if d.Run == jInd {
		t.Fatalf("independent job outranked the unblocking chain")
	}
}

func TestEndToEndWithResources(t *testing.T) {
	a := stepTask(1, 0.1, 10, 5e6)
	a.Sections = []task.Section{{Resource: 1, Start: 0, End: 0.6}}
	b := stepTask(2, 0.15, 40, 8e6)
	b.Sections = []task.Section{{Resource: 1, Start: 0.2, End: 0.9}}
	ft := cpu.PowerNowK6()
	res, err := engine.Run(engine.Config{
		Tasks: task.Set{a, b}, Scheduler: gus.New(), Freqs: ft,
		Energy:  energy.MustPreset(energy.E1, ft.Max()),
		Horizon: 1.0, Seed: 5, AbortAtTermination: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := metrics.Analyze(res)
	if rep.Released == 0 || rep.Completed+rep.Aborted != rep.Released {
		t.Fatalf("report %+v", rep)
	}
}

func TestOverloadBeatsEDF(t *testing.T) {
	src := rng.New(3)
	ts := make(task.Set, 5)
	for i := range ts {
		p := src.Uniform(0.03, 0.12)
		ts[i] = stepTask(i+1, p, 1+float64(i*i*25), 1e6)
	}
	ft := cpu.PowerNowK6()
	ts = ts.ScaleToLoad(1.6, ft.Max())
	run := func(s sched.Scheduler) float64 {
		res, err := engine.Run(engine.Config{
			Tasks: ts, Scheduler: s, Freqs: ft,
			Energy:  energy.MustPreset(energy.E1, ft.Max()),
			Horizon: 2.0, Seed: 6, AbortAtTermination: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return metrics.Analyze(res).AccruedUtility
	}
	if gu, eu := run(gus.New()), run(edf.New(true)); gu <= eu {
		t.Fatalf("GUS %v <= EDF %v during overload", gu, eu)
	}
}

func TestAbortsInfeasible(t *testing.T) {
	tk := stepTask(1, 0.1, 10, 50e6)
	s := gus.New()
	if err := s.Init(ctx(task.Set{tk})); err != nil {
		t.Fatal(err)
	}
	j := task.NewJob(tk, 0, 0, rng.New(1))
	if d := s.Decide(0.06, []*task.Job{j}); len(d.Abort) != 1 || d.Run != nil {
		t.Fatalf("decision %+v", d)
	}
}
