// Package sched defines the scheduler abstraction shared by EUA* and all
// baselines, together with the schedule-construction helpers the paper's
// Algorithm 1 builds on: EDF (critical-time) ordering, the feasibility
// predicate at the maximum frequency, and ordered insertion.
package sched

import (
	"fmt"
	"sort"
	"time"

	"github.com/euastar/euastar/internal/cpu"
	"github.com/euastar/euastar/internal/energy"
	"github.com/euastar/euastar/internal/task"
	"github.com/euastar/euastar/internal/telemetry"
)

// Context carries the platform and application parameters a scheduler may
// inspect. It is fixed for the lifetime of a simulation run.
type Context struct {
	Tasks  task.Set
	Freqs  cpu.FrequencyTable
	Energy energy.Model

	// CoreFreqs, on a multiprocessor run (engine Config.Cores > 1), holds
	// each core's frequency table — heterogeneous ladders allowed. Nil
	// (every uniprocessor run) means all cores share Freqs, which then
	// doubles as the fastest reference ladder.
	CoreFreqs []cpu.FrequencyTable

	// Telemetry, when non-nil, is the registry schedulers report their
	// per-decision metrics into (via Instruments). The engine forwards
	// its Config.Telemetry here; nil keeps scheduling uninstrumented at
	// zero cost.
	Telemetry *telemetry.Registry
}

// Validate checks the context.
func (c *Context) Validate() error {
	if c == nil {
		return fmt.Errorf("sched: nil context")
	}
	if err := c.Tasks.Validate(); err != nil {
		return err
	}
	if err := c.Freqs.Validate(); err != nil {
		return err
	}
	return c.Energy.Validate()
}

// Decision is a scheduler's answer at a scheduling event: which job to
// execute (nil to idle), at which frequency, and which jobs to abort
// because they can no longer contribute utility.
type Decision struct {
	Run   *task.Job
	Freq  float64
	Abort []*task.Job
}

// Scheduler is a sequencing algorithm invoked at every scheduling event
// (job arrival, job completion, termination-time expiry).
//
// Implementations see only the scheduler-visible job state — allocations
// and executed cycles — never the realized demand.
type Scheduler interface {
	// Name identifies the scheme in experiment output.
	Name() string
	// Init performs offline computation (the paper's offlineComputing())
	// before the simulation starts.
	Init(ctx *Context) error
	// Decide selects the job and frequency at time now. ready holds all
	// released, unfinished, unaborted jobs; it may be reordered in place
	// but not mutated otherwise.
	Decide(now float64, ready []*task.Job) Decision
}

// Metric names the schedulers report, one series per scheme label.
const (
	MetricDecideSeconds = "euastar_sched_decide_seconds"
	MetricReadyJobs     = "euastar_sched_ready_jobs"
	MetricFeasIters     = "euastar_sched_feasibility_iterations_total"
	MetricFreqSwitches  = "euastar_sched_freq_switches_total"
)

// Instruments bundles the per-scheme metrics every scheduler reports:
// per-decision wall-clock latency, the ready-queue (equivalently, for the
// heap-based schemes, heap) size each decision saw, cumulative
// feasibility-loop iterations, and decision-level DVS frequency changes.
// Obtain one from Context.Instruments in Init; a nil *Instruments (no
// registry configured) makes every method a no-op, so schedulers call
// them unconditionally.
type Instruments struct {
	decide   *telemetry.Histogram
	ready    *telemetry.Histogram
	feas     *telemetry.Counter
	switches *telemetry.Counter
	lastFreq float64 // previous decision's frequency, 0 before the first
}

// Instruments returns the metric bundle for the named scheme, or nil when
// the context carries no registry. Schedulers sharing a registry and a
// scheme name share series — intended for the euad service, where one
// registry accumulates across runs.
func (c *Context) Instruments(scheme string) *Instruments {
	if c == nil || c.Telemetry == nil {
		return nil
	}
	l := telemetry.L("scheme", scheme)
	return &Instruments{
		decide: c.Telemetry.Histogram(MetricDecideSeconds,
			"Wall-clock seconds per Decide call.", telemetry.LatencyBuckets(), l),
		ready: c.Telemetry.Histogram(MetricReadyJobs,
			"Ready-queue length observed per Decide call.", telemetry.DepthBuckets(), l),
		feas: c.Telemetry.Counter(MetricFeasIters,
			"Feasibility-loop iterations across schedule constructions.", l),
		switches: c.Telemetry.Counter(MetricFreqSwitches,
			"Decisions whose chosen frequency differs from the previous decision's.", l),
	}
}

// Begin stamps the start of a Decide call. Nil-safe: without instruments
// it returns the zero time and End ignores it.
func (ins *Instruments) Begin() time.Time {
	if ins == nil {
		return time.Time{}
	}
	return time.Now()
}

// End records one finished Decide call: its latency, the ready size it
// saw, and whether its frequency choice switched from the previous one.
func (ins *Instruments) End(start time.Time, ready int, freq float64) {
	if ins == nil {
		return
	}
	ins.decide.Observe(time.Since(start).Seconds())
	ins.ready.Observe(float64(ready))
	// Idle decisions carry frequency 0 and are not DVS switches.
	if freq > 0 {
		if ins.lastFreq > 0 && freq != ins.lastFreq {
			ins.switches.Inc()
		}
		ins.lastFreq = freq
	}
}

// FeasibilityIterations adds n iterations of a feasibility/insertion loop
// (Algorithm 1's per-job greedy insertion, DASA's tentative schedules).
func (ins *Instruments) FeasibilityIterations(n int) {
	if ins == nil || n <= 0 {
		return
	}
	ins.feas.Add(uint64(n))
}

// UER returns job j's Utility and Energy Ratio at time now when executed
// at frequency f: U_J(now + c/f) / (E(f) · c), the utility accrued per
// unit of energy spent finishing the job's remaining allocation c
// (Algorithm 1 line 11 evaluates it at f_m). It is the common currency of
// EUA*'s schedule construction and of the engine's overload safe mode,
// which sheds the lowest-UER pending work first.
func UER(now float64, j *task.Job, f float64, m energy.Model) float64 {
	c := j.EstimatedRemaining()
	return j.UtilityAt(now+c/f) / (c * m.PerCycle(f))
}

// ByCriticalTime sorts jobs by absolute critical time (EDF order on
// critical times), breaking ties by arrival then task ID then index so
// that the order is total and deterministic.
func ByCriticalTime(jobs []*task.Job) {
	sort.SliceStable(jobs, func(i, j int) bool { return jobLess(jobs[i], jobs[j]) })
}

// Less reports whether a precedes b in the deterministic critical-time
// total order (AbsCritical, then Arrival, then Task.ID, then Index) that
// ByCriticalTime and InsertByCritical are built on. It is exported so
// alternative schedule constructions (e.g. EUA*'s fast path) can
// reproduce exactly the same ordering decisions.
func Less(a, b *task.Job) bool { return jobLess(a, b) }

func jobLess(a, b *task.Job) bool {
	if a.AbsCritical != b.AbsCritical {
		return a.AbsCritical < b.AbsCritical
	}
	if a.Arrival != b.Arrival {
		return a.Arrival < b.Arrival
	}
	if a.Task.ID != b.Task.ID {
		return a.Task.ID < b.Task.ID
	}
	return a.Index < b.Index
}

// Feasible implements the paper's feasible(σ) predicate: with the jobs
// executed in the given order starting at time now, each job's predicted
// completion time at the highest frequency fmax must not exceed its
// termination time.
func Feasible(order []*task.Job, now, fmax float64) bool {
	t := now
	for _, j := range order {
		t += j.EstimatedRemaining() / fmax
		if t > j.Termination+1e-12*j.Termination {
			return false
		}
	}
	return true
}

// JobFeasible reports whether a single job could still finish by its
// termination time if executed immediately and alone at fmax — the
// per-job test of Algorithm 1 line 10.
func JobFeasible(j *task.Job, now, fmax float64) bool {
	return now+j.EstimatedRemaining()/fmax <= j.Termination+1e-12*j.Termination
}

// InsertByCritical inserts j into the critical-time-ordered schedule order
// "at the position indicated by" its critical time, after any entries with
// the same key (Algorithm 1's insert(T, σ, I)), returning the extended
// slice. order must already be critical-time ordered.
func InsertByCritical(order []*task.Job, j *task.Job) []*task.Job {
	i := sort.Search(len(order), func(i int) bool { return jobLess(j, order[i]) })
	order = append(order, nil)
	copy(order[i+1:], order[i:])
	order[i] = j
	return order
}

// EarliestByTask groups ready jobs by task and returns, per task ID, the
// pending job with the earliest absolute critical time together with the
// number of pending jobs of that task. Both EUA*'s decideFreq and the
// DVS baselines consume this per-task view.
func EarliestByTask(ready []*task.Job) map[int]TaskView {
	m := make(map[int]TaskView)
	for _, j := range ready {
		v, ok := m[j.Task.ID]
		if !ok {
			m[j.Task.ID] = TaskView{Earliest: j, Pending: 1}
			continue
		}
		v.Pending++
		if jobLess(j, v.Earliest) {
			v.Earliest = j
		}
		m[j.Task.ID] = v
	}
	return m
}

// TaskView is the per-task aggregate used by DVS analyses.
type TaskView struct {
	Earliest *task.Job // pending job with the earliest absolute critical time
	Pending  int       // number of pending jobs of the task
}

// WindowRemaining returns C_i^r, the remaining allocated cycles of task t
// in the current time window (Section 3.3):
//
//	C_i^r = c_i^r + (a_i − 1)·c_i
//
// the earliest pending job's remaining allocation plus a full allocation
// c_i for each further instance the window may carry — whether it has
// already arrived or not (the UAM adversary may still release it), and
// capped at a_i instances in total even when unfinished jobs from the
// previous window push the actual pending count a'_i above a_i ("we only
// need to consider at most a_i instances").
func WindowRemaining(t *task.Task, v TaskView) float64 {
	if v.Pending == 0 || v.Earliest == nil {
		return 0
	}
	return v.Earliest.EstimatedRemaining() + float64(t.Arrival.A-1)*t.CycleAllocation()
}
