package sched

import (
	"math"
	"sort"
)

// LookAheadEntry is one task's input to the deferral analysis of
// Algorithm 2 (decideFreq), the UAM generalization of Pillai–Shin
// look-ahead EDF.
type LookAheadEntry struct {
	// AbsCritical is D_i^a, the task's earliest pending invocation's
	// absolute critical time.
	AbsCritical float64
	// Remaining is C_i^r, the task's remaining allocated cycles in the
	// current window.
	Remaining float64
	// StaticUtil is the task's static demand rate C_i/D_i in cycles per
	// second (Theorem 1's frequency bound).
	StaticUtil float64
}

// LookAheadFrequency runs the deferral loop of Algorithm 2 lines 2–9 and
// returns the minimum frequency (cycles/second) that executes, before the
// earliest critical time D_n^a, every cycle that cannot be deferred past
// it. The result is uncapped: callers clamp it to the frequency table
// (during overloads it may exceed f_m, and the algorithm "sets the upper
// limit ... to be the highest frequency").
//
// The loop walks tasks in reverse EDF order (latest critical time first),
// assuming worst-case aggregate demand Util by earlier-critical-time tasks,
// and pushes as much of each task's work as possible beyond D_n^a.
func LookAheadFrequency(now, fmax float64, entries []LookAheadEntry) float64 {
	order := append([]LookAheadEntry(nil), entries...)
	return LookAheadFrequencyInPlace(now, fmax, order)
}

// LookAheadFrequencyInPlace is LookAheadFrequency without the defensive
// copy: entries is reordered in place. Hot paths that own a reusable
// entry buffer call this variant to avoid the per-event allocation; both
// variants run the identical deferral loop (including the identical sort,
// so entries with equal critical times are processed in the same order)
// and therefore return bit-identical results for the same input sequence.
func LookAheadFrequencyInPlace(now, fmax float64, entries []LookAheadEntry) float64 {
	if len(entries) == 0 {
		return 0
	}
	// Reverse EDF order: latest absolute critical time first.
	order := entries
	sort.Slice(order, func(i, j int) bool { return order[i].AbsCritical > order[j].AbsCritical })
	dn := order[len(order)-1].AbsCritical

	util := 0.0
	for _, e := range order {
		util += e.StaticUtil
	}
	s := 0.0
	for _, e := range order {
		util -= e.StaticUtil
		span := e.AbsCritical - dn
		if span <= 0 {
			// Tasks whose critical time is the closest one: none of their
			// remaining cycles can be deferred (Algorithm 2 line 7's
			// degenerate case; the paper adds full capacity to Util).
			s += e.Remaining
			util += fmax
			continue
		}
		// x: minimum cycles the task must execute before dn to still meet
		// its own critical time given capacity (fmax − Util) until then.
		x := e.Remaining - (fmax-util)*span
		if x < 0 {
			x = 0
		}
		s += x
		// Adjust Util to the task's actual demand after dn.
		util += (e.Remaining - x) / span
	}
	if s <= 0 {
		return 0
	}
	if dn <= now {
		// Work is due immediately: no finite frequency suffices.
		return math.Inf(1)
	}
	return s / (dn - now)
}
