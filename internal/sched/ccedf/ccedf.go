// Package ccedf implements cycle-conserving EDF (Pillai & Shin, SOSP'01,
// the paper's reference [13]) adapted to the task model of the paper: job
// deadlines are critical times, and — as Section 5 specifies for the
// baselines — the per-job cycle budgets are "the cycles allocated by EUA*"
// (the Chebyshev allocations c_i) rather than worst cases.
//
// ccEDF tracks per-task utilization: when a job is released the task
// contributes its full allocated rate C_i/D_i; when a job completes having
// used fewer cycles than allocated, the task's contribution shrinks to the
// actually-used rate until the next release. The frequency is the lowest
// table entry covering the summed utilization.
package ccedf

import (
	"fmt"

	"github.com/euastar/euastar/internal/sched"
	"github.com/euastar/euastar/internal/task"
)

// Scheduler is cycle-conserving EDF with DVS.
type Scheduler struct {
	ctx   *sched.Context
	ins   *sched.Instruments
	util  map[int]float64 // task ID → current utilization contribution (cycles/sec)
	abort bool
}

// New returns a ccEDF scheduler. abortInfeasible controls whether jobs
// that cannot meet their termination time at f_m are aborted.
func New(abortInfeasible bool) *Scheduler {
	return &Scheduler{abort: abortInfeasible}
}

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string {
	if s.abort {
		return "ccEDF"
	}
	return "ccEDF-NA"
}

// Init implements sched.Scheduler.
func (s *Scheduler) Init(ctx *sched.Context) error {
	if err := ctx.Validate(); err != nil {
		return fmt.Errorf("ccedf: %w", err)
	}
	s.ctx = ctx
	s.util = make(map[int]float64, len(ctx.Tasks))
	// Before any release a task contributes its static rate (conservative,
	// as in the original algorithm's initialization U_i = C_i/T_i).
	for _, t := range ctx.Tasks {
		s.util[t.ID] = t.MinFrequency()
	}
	s.ins = ctx.Instruments(s.Name())
	return nil
}

// OnRelease implements engine.EventObserver: restore the full allocated
// rate at each release.
func (s *Scheduler) OnRelease(now float64, j *task.Job) {
	s.util[j.Task.ID] = j.Task.MinFrequency()
}

// OnComplete implements engine.EventObserver: shrink the task's rate to
// the cycles actually consumed when no further jobs of the task are
// pending.
func (s *Scheduler) OnComplete(now float64, j *task.Job) {
	s.util[j.Task.ID] = float64(j.Task.Arrival.A) * j.Executed / j.Task.CriticalTime()
}

// Decide implements sched.Scheduler.
func (s *Scheduler) Decide(now float64, ready []*task.Job) sched.Decision {
	start := s.ins.Begin()
	d := s.decide(now, ready)
	s.ins.End(start, len(ready), d.Freq)
	return d
}

func (s *Scheduler) decide(now float64, ready []*task.Job) sched.Decision {
	fm := s.ctx.Freqs.Max()
	var live []*task.Job
	var aborts []*task.Job
	for _, j := range ready {
		if s.abort && !sched.JobFeasible(j, now, fm) {
			j.AbortReason = "infeasible at f_m"
			aborts = append(aborts, j)
			continue
		}
		live = append(live, j)
	}
	if len(live) == 0 {
		return sched.Decision{Abort: aborts}
	}
	sched.ByCriticalTime(live)
	total := 0.0
	for _, u := range s.util {
		total += u
	}
	return sched.Decision{Run: live[0], Freq: s.ctx.Freqs.ClampSelect(total), Abort: aborts}
}
