package ccedf_test

import (
	"testing"

	"github.com/euastar/euastar/internal/cpu"
	"github.com/euastar/euastar/internal/energy"
	"github.com/euastar/euastar/internal/engine"
	"github.com/euastar/euastar/internal/rng"
	"github.com/euastar/euastar/internal/sched"
	"github.com/euastar/euastar/internal/sched/ccedf"
	"github.com/euastar/euastar/internal/sched/edf"
	"github.com/euastar/euastar/internal/task"
	"github.com/euastar/euastar/internal/tuf"
	"github.com/euastar/euastar/internal/uam"
)

func stepTask(id int, p, height, mean float64) *task.Task {
	return &task.Task{
		ID: id, Arrival: uam.Spec{A: 1, P: p},
		TUF:    tuf.NewStep(height, p),
		Demand: task.Demand{Mean: mean, Variance: 0},
		Req:    task.Requirement{Nu: 1, Rho: 0.9},
	}
}

func ctx(ts task.Set) *sched.Context {
	ft := cpu.PowerNowK6()
	return &sched.Context{Tasks: ts, Freqs: ft, Energy: energy.MustPreset(energy.E1, ft.Max())}
}

func TestNames(t *testing.T) {
	if ccedf.New(true).Name() != "ccEDF" || ccedf.New(false).Name() != "ccEDF-NA" {
		t.Fatal("names")
	}
}

func TestInitValidates(t *testing.T) {
	if err := ccedf.New(true).Init(&sched.Context{}); err == nil {
		t.Fatal("empty context accepted")
	}
}

func TestFrequencyTracksStaticUtilization(t *testing.T) {
	// Two tasks each at ~27% of f_m: the summed utilization (~5.4e8)
	// selects 550 MHz while both are fresh.
	a := stepTask(1, 0.1, 10, 27e6)
	b := stepTask(2, 0.1, 10, 27e6)
	s := ccedf.New(true)
	if err := s.Init(ctx(task.Set{a, b})); err != nil {
		t.Fatal(err)
	}
	ja := task.NewJob(a, 0, 0, rng.New(1))
	jb := task.NewJob(b, 0, 0, rng.New(2))
	s.OnRelease(0, ja)
	s.OnRelease(0, jb)
	d := s.Decide(0, []*task.Job{ja, jb})
	if d.Freq != 550e6 {
		t.Fatalf("freq = %v, want 550 MHz", d.Freq)
	}
	if d.Run != ja && d.Run != jb {
		t.Fatal("no job selected")
	}
}

func TestCompletionConservesCycles(t *testing.T) {
	// After a job completes using fewer cycles than allocated, the task's
	// utilization contribution shrinks and the frequency drops.
	a := stepTask(1, 0.1, 10, 40e6)
	b := stepTask(2, 0.1, 10, 40e6)
	s := ccedf.New(true)
	if err := s.Init(ctx(task.Set{a, b})); err != nil {
		t.Fatal(err)
	}
	ja := task.NewJob(a, 0, 0, rng.New(1))
	jb := task.NewJob(b, 0, 0, rng.New(2))
	s.OnRelease(0, ja)
	s.OnRelease(0, jb)
	before := s.Decide(0, []*task.Job{ja, jb}).Freq

	// ja completes early having used only a quarter of its allocation.
	ja.Executed = 10e6
	s.OnComplete(0.02, ja)
	after := s.Decide(0.02, []*task.Job{jb}).Freq
	if after >= before {
		t.Fatalf("frequency did not drop after early completion: %v → %v", before, after)
	}
}

func TestOverloadSelectsMax(t *testing.T) {
	a := stepTask(1, 0.1, 10, 80e6)
	b := stepTask(2, 0.1, 10, 80e6)
	s := ccedf.New(true)
	if err := s.Init(ctx(task.Set{a, b})); err != nil {
		t.Fatal(err)
	}
	ja := task.NewJob(a, 0, 0, rng.New(1))
	jb := task.NewJob(b, 0, 0, rng.New(2))
	s.OnRelease(0, ja)
	s.OnRelease(0, jb)
	if d := s.Decide(0, []*task.Job{ja, jb}); d.Freq != 1000e6 {
		t.Fatalf("overload freq = %v", d.Freq)
	}
}

func TestEndToEndMeetsDeadlinesAndSavesEnergy(t *testing.T) {
	src := rng.New(5)
	ts := make(task.Set, 3)
	for i := range ts {
		p := src.Uniform(0.04, 0.15)
		ts[i] = stepTask(i+1, p, 10, 1e6)
	}
	ft := cpu.PowerNowK6()
	ts = ts.ScaleToLoad(0.5, ft.Max())
	run := func(s sched.Scheduler) *engine.Result {
		res, err := engine.Run(engine.Config{
			Tasks: ts, Scheduler: s, Freqs: ft,
			Energy:  energy.MustPreset(energy.E1, ft.Max()),
			Horizon: 2.0, Seed: 9, AbortAtTermination: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rcc := run(ccedf.New(true))
	redf := run(edf.New(true))
	for _, j := range rcc.Jobs {
		if j.State != task.Completed {
			t.Fatalf("ccEDF failed job %v", j)
		}
	}
	if rcc.TotalEnergy >= redf.TotalEnergy {
		t.Fatalf("ccEDF energy %v >= EDF@fm %v", rcc.TotalEnergy, redf.TotalEnergy)
	}
}

func TestNAVariantKeepsInfeasible(t *testing.T) {
	tk := stepTask(1, 0.1, 10, 50e6)
	s := ccedf.New(false)
	if err := s.Init(ctx(task.Set{tk})); err != nil {
		t.Fatal(err)
	}
	j := task.NewJob(tk, 0, 0, rng.New(1))
	s.OnRelease(0, j)
	if d := s.Decide(0.06, []*task.Job{j}); len(d.Abort) != 0 || d.Run != j {
		t.Fatalf("decision = %+v", d)
	}
}
