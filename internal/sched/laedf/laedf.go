// Package laedf implements look-ahead EDF (Pillai & Shin, SOSP'01, the
// paper's reference [13]) adapted to the task model of the paper: job
// deadlines are critical times and cycle budgets are the EUA* allocations
// c_i (Section 5: the baselines take "cycles allocated by EUA*" as their
// inputs).
//
// laEDF defers as much work as possible past the earliest deadline and
// runs at the lowest frequency that still completes the non-deferrable
// cycles in time — the same deferral analysis EUA* generalizes in its
// decideFreq (Algorithm 2), here without the UAM windowed-demand
// bookkeeping and without EUA*'s UER mechanisms.
//
// The NA (no-abort) variant never drops jobs; the paper uses it to expose
// the domino effect during overloads.
package laedf

import (
	"fmt"

	"github.com/euastar/euastar/internal/sched"
	"github.com/euastar/euastar/internal/task"
)

// Scheduler is look-ahead EDF with DVS.
type Scheduler struct {
	ctx   *sched.Context
	ins   *sched.Instruments
	abort bool
}

// New returns a laEDF scheduler. abortInfeasible controls whether jobs
// that cannot meet their termination time at f_m are aborted (false gives
// the paper's "-NA" variant).
func New(abortInfeasible bool) *Scheduler {
	return &Scheduler{abort: abortInfeasible}
}

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string {
	if s.abort {
		return "laEDF"
	}
	return "laEDF-NA"
}

// Init implements sched.Scheduler.
func (s *Scheduler) Init(ctx *sched.Context) error {
	if err := ctx.Validate(); err != nil {
		return fmt.Errorf("laedf: %w", err)
	}
	s.ctx = ctx
	s.ins = ctx.Instruments(s.Name())
	return nil
}

// Decide implements sched.Scheduler.
func (s *Scheduler) Decide(now float64, ready []*task.Job) sched.Decision {
	start := s.ins.Begin()
	d := s.decide(now, ready)
	s.ins.End(start, len(ready), d.Freq)
	return d
}

func (s *Scheduler) decide(now float64, ready []*task.Job) sched.Decision {
	fm := s.ctx.Freqs.Max()
	var live []*task.Job
	var aborts []*task.Job
	for _, j := range ready {
		if s.abort && !sched.JobFeasible(j, now, fm) {
			j.AbortReason = "infeasible at f_m"
			aborts = append(aborts, j)
			continue
		}
		live = append(live, j)
	}
	if len(live) == 0 {
		return sched.Decision{Abort: aborts}
	}
	sched.ByCriticalTime(live)

	views := sched.EarliestByTask(live)
	entries := make([]sched.LookAheadEntry, 0, len(s.ctx.Tasks))
	for _, t := range s.ctx.Tasks {
		v, ok := views[t.ID]
		if !ok {
			// Idle task: keep its static rate reserved against the
			// earliest critical time a new arrival could impose.
			entries = append(entries, sched.LookAheadEntry{
				AbsCritical: now + t.CriticalTime(),
				Remaining:   0,
				StaticUtil:  t.MinFrequency(),
			})
			continue
		}
		// Classic laEDF considers the outstanding job's remaining budget;
		// with several pending instances their budgets accumulate.
		remaining := v.Earliest.EstimatedRemaining() +
			float64(v.Pending-1)*t.CycleAllocation()
		entries = append(entries, sched.LookAheadEntry{
			AbsCritical: v.Earliest.AbsCritical,
			Remaining:   remaining,
			StaticUtil:  t.MinFrequency(),
		})
	}
	req := sched.LookAheadFrequency(now, fm, entries)
	if req > fm {
		req = fm
	}
	return sched.Decision{Run: live[0], Freq: s.ctx.Freqs.ClampSelect(req), Abort: aborts}
}
