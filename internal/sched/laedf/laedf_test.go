package laedf_test

import (
	"testing"

	"github.com/euastar/euastar/internal/cpu"
	"github.com/euastar/euastar/internal/energy"
	"github.com/euastar/euastar/internal/engine"
	"github.com/euastar/euastar/internal/metrics"
	"github.com/euastar/euastar/internal/rng"
	"github.com/euastar/euastar/internal/sched"
	"github.com/euastar/euastar/internal/sched/ccedf"
	"github.com/euastar/euastar/internal/sched/laedf"
	"github.com/euastar/euastar/internal/task"
	"github.com/euastar/euastar/internal/tuf"
	"github.com/euastar/euastar/internal/uam"
)

func stepTask(id int, p, height, mean float64) *task.Task {
	return &task.Task{
		ID: id, Arrival: uam.Spec{A: 1, P: p},
		TUF:    tuf.NewStep(height, p),
		Demand: task.Demand{Mean: mean, Variance: 0},
		Req:    task.Requirement{Nu: 1, Rho: 0.9},
	}
}

func ctx(ts task.Set) *sched.Context {
	ft := cpu.PowerNowK6()
	return &sched.Context{Tasks: ts, Freqs: ft, Energy: energy.MustPreset(energy.E1, ft.Max())}
}

func TestNames(t *testing.T) {
	if laedf.New(true).Name() != "laEDF" || laedf.New(false).Name() != "laEDF-NA" {
		t.Fatal("names")
	}
}

func TestInitValidates(t *testing.T) {
	if err := laedf.New(true).Init(&sched.Context{}); err == nil {
		t.Fatal("empty context accepted")
	}
}

func TestDefersBelowStaticUtilization(t *testing.T) {
	// Look-ahead EDF can pick a frequency below the static utilization by
	// deferring work past the earliest deadline — the defining difference
	// from ccEDF.
	a := stepTask(1, 0.02, 10, 4e6)  // tight: 20% util, early deadline
	b := stepTask(2, 0.30, 10, 90e6) // heavy but far away: 30% util
	s := laedf.New(true)
	if err := s.Init(ctx(task.Set{a, b})); err != nil {
		t.Fatal(err)
	}
	cc := ccedf.New(true)
	if err := cc.Init(ctx(task.Set{a, b})); err != nil {
		t.Fatal(err)
	}
	ja := task.NewJob(a, 0, 0, rng.New(1))
	jb := task.NewJob(b, 0, 0, rng.New(2))
	cc.OnRelease(0, ja)
	cc.OnRelease(0, jb)
	fLA := s.Decide(0, []*task.Job{ja, jb}).Freq
	fCC := cc.Decide(0, []*task.Job{ja, jb}).Freq
	if fLA > fCC {
		t.Fatalf("laEDF %v > ccEDF %v: deferral ineffective", fLA, fCC)
	}
}

func TestRunsEDFOrder(t *testing.T) {
	a, b := stepTask(1, 0.2, 10, 1e6), stepTask(2, 0.05, 10, 1e6)
	s := laedf.New(true)
	if err := s.Init(ctx(task.Set{a, b})); err != nil {
		t.Fatal(err)
	}
	ja := task.NewJob(a, 0, 0, rng.New(1))
	jb := task.NewJob(b, 0, 0, rng.New(2))
	if d := s.Decide(0, []*task.Job{ja, jb}); d.Run != jb {
		t.Fatalf("ran %v", d.Run)
	}
}

func TestAbortBehaviour(t *testing.T) {
	tk := stepTask(1, 0.1, 10, 50e6)
	j := task.NewJob(tk, 0, 0, rng.New(1))
	withAbort := laedf.New(true)
	if err := withAbort.Init(ctx(task.Set{tk})); err != nil {
		t.Fatal(err)
	}
	if d := withAbort.Decide(0.06, []*task.Job{j}); len(d.Abort) != 1 {
		t.Fatalf("abort variant kept infeasible job: %+v", d)
	}
	na := laedf.New(false)
	if err := na.Init(ctx(task.Set{tk})); err != nil {
		t.Fatal(err)
	}
	j2 := task.NewJob(tk, 0, 0, rng.New(1))
	if d := na.Decide(0.06, []*task.Job{j2}); len(d.Abort) != 0 || d.Run != j2 {
		t.Fatalf("NA variant decision: %+v", d)
	}
}

func TestEndToEndUnderload(t *testing.T) {
	src := rng.New(11)
	ts := make(task.Set, 3)
	for i := range ts {
		p := src.Uniform(0.04, 0.15)
		ts[i] = stepTask(i+1, p, 10, 1e6)
	}
	ft := cpu.PowerNowK6()
	ts = ts.ScaleToLoad(0.5, ft.Max())
	run := func(s sched.Scheduler, abort bool) *metrics.Report {
		res, err := engine.Run(engine.Config{
			Tasks: ts, Scheduler: s, Freqs: ft,
			Energy:  energy.MustPreset(energy.E1, ft.Max()),
			Horizon: 2.0, Seed: 4, AbortAtTermination: abort,
		})
		if err != nil {
			t.Fatal(err)
		}
		return metrics.Analyze(res)
	}
	rla := run(laedf.New(true), true)
	rcc := run(ccedf.New(true), true)
	if !rla.AssuranceSatisfied() {
		t.Fatal("laEDF violated assurance at load 0.5")
	}
	// The look-ahead should be at least as energy-efficient as cycle
	// conservation on this light, deferral-friendly load.
	if rla.TotalEnergy > rcc.TotalEnergy*1.05 {
		t.Fatalf("laEDF energy %v ≫ ccEDF %v", rla.TotalEnergy, rcc.TotalEnergy)
	}
}

// TestNADominoEnergy: the no-abort variant executes every released cycle,
// so its energy grows with load even deep into overload — the behaviour
// behind Figure 2(b)/(d)'s diverging -NA curve.
func TestNADominoEnergy(t *testing.T) {
	src := rng.New(13)
	base := make(task.Set, 3)
	for i := range base {
		p := src.Uniform(0.04, 0.15)
		base[i] = stepTask(i+1, p, 10, 1e6)
	}
	ft := cpu.PowerNowK6()
	var prev float64
	for _, load := range []float64{1.2, 1.5, 1.8} {
		ts := base.ScaleToLoad(load, ft.Max())
		res, err := engine.Run(engine.Config{
			Tasks: ts, Scheduler: laedf.New(false), Freqs: ft,
			Energy:  energy.MustPreset(energy.E1, ft.Max()),
			Horizon: 1.0, Seed: 8, AbortAtTermination: false,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalEnergy <= prev {
			t.Fatalf("NA energy not increasing with load: %v after %v", res.TotalEnergy, prev)
		}
		prev = res.TotalEnergy
	}
}
