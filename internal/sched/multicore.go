package sched

import (
	"github.com/euastar/euastar/internal/cpu"
	"github.com/euastar/euastar/internal/task"
)

// CoreDecision is one core's slot in a multiprocessor decision: the job
// the core executes next (nil to idle the core) and the core-local DVS
// frequency, which must be a step of that core's table.
type CoreDecision struct {
	Run  *task.Job
	Freq float64
}

// MultiDecision is a multiprocessor scheduler's answer at a scheduling
// event: one CoreDecision per core (indexed by core id) plus the jobs to
// abort. A job may appear on at most one core.
type MultiDecision struct {
	Cores []CoreDecision
	Abort []*task.Job
}

// MultiScheduler is the multiprocessor scheduler contract. The engine
// requires it whenever Config.Cores > 1: Decide is never called on a
// multi-core run — DecideMulti is — but implementations keep the single
// Decide for the uniprocessor (m = 1) degenerate case, where they must
// behave exactly like the scheme they wrap.
type MultiScheduler interface {
	Scheduler
	// Cores returns the core count the scheduler was built for; the
	// engine rejects a mismatch with Config.Cores at Validate time.
	Cores() int
	// DecideMulti selects, at time now, one job and frequency per core.
	// ready holds all released, unfinished, unaborted jobs of the whole
	// system; like Decide it may be reordered in place but not mutated,
	// and the returned slice headers must not be retained.
	DecideMulti(now float64, ready []*task.Job) MultiDecision
}

// CoreTables resolves the per-core frequency tables for m cores: entry k
// of CoreFreqs when set, the shared Freqs ladder otherwise.
func (c *Context) CoreTables(m int) []cpu.FrequencyTable {
	tables := make([]cpu.FrequencyTable, m)
	for k := range tables {
		if k < len(c.CoreFreqs) && c.CoreFreqs[k] != nil {
			tables[k] = c.CoreFreqs[k]
		} else {
			tables[k] = c.Freqs
		}
	}
	return tables
}
