// Coastal air defense: the command-and-control workload behind the
// paper's Figures 1(b)–(c). Plot correlation and track maintenance carry
// plateaued soft time constraints; the missile-control chain (launch,
// mid-course guidance, intercept) carries tight step constraints whose
// optimality is as mission-critical as any hard deadline.
//
// The example runs the battle-management mix at increasing threat levels
// and reports, per activity, how each scheduler honours the statistical
// requirement {ν, ρ} — the paper's notion of assurance — and what the
// defense pays in energy on a battery-backed mobile radar.
package main

import (
	"fmt"
	"log"

	euastar "github.com/euastar/euastar"
)

const ms = euastar.Millisecond

func tasks(threat float64) euastar.TaskSet {
	// Plot correlation and maintenance (Figure 1(b)): full utility up to
	// t_f, half-value plateau to 2·t_f, then gone.
	corrTUF, err := euastar.PiecewiseTUF(
		[2]float64{0, 40},
		[2]float64{30 * ms, 40},
		[2]float64{31 * ms, 20},
		[2]float64{60 * ms, 20},
		[2]float64{60.001 * ms, 0},
		[2]float64{70 * ms, 0},
	)
	if err != nil {
		log.Fatal(err)
	}
	return euastar.TaskSet{
		{
			ID: 1, Name: "plot-corr",
			Arrival: euastar.UAM(3, 70*ms),
			TUF:     corrTUF,
			Demand:  euastar.Demand{Mean: 3e6 * threat, Variance: 3e6 * threat},
			Req:     euastar.Requirement{Nu: 0.5, Rho: 0.9},
		},
		{
			ID: 2, Name: "track-maint",
			Arrival: euastar.Periodic(100 * ms),
			TUF:     euastar.QuadraticTUF(25, 100*ms),
			Demand:  euastar.Demand{Mean: 5e6 * threat, Variance: 5e6 * threat},
			Req:     euastar.Requirement{Nu: 0.4, Rho: 0.9},
		},
		{
			ID: 3, Name: "missile-ctl",
			Arrival: euastar.Periodic(25 * ms),
			TUF:     euastar.StepTUF(70, 25*ms),
			Demand:  euastar.Demand{Mean: 2e6 * threat, Variance: 2e6 * threat},
			Req:     euastar.Requirement{Nu: 1, Rho: 0.96},
		},
		{
			ID: 4, Name: "status-bcast",
			Arrival: euastar.Periodic(200 * ms),
			TUF:     euastar.LinearTUF(5, 0, 200*ms),
			Demand:  euastar.Demand{Mean: 8e6 * threat, Variance: 8e6 * threat},
			Req:     euastar.Requirement{Nu: 0.3, Rho: 0.9},
		},
	}
}

func main() {
	fmt.Println("Coastal air defense — statistical assurance under threat escalation")
	for _, level := range []struct {
		name   string
		threat float64
	}{
		{"patrol (underload)", 1.0},
		{"engagement", 3.0},
		{"saturation attack", 6.5},
	} {
		cfg := euastar.SimConfig{
			Tasks:              tasks(level.threat),
			Horizon:            4,
			Seed:               11,
			AbortAtTermination: true,
		}
		reports, err := euastar.Compare(cfg,
			euastar.NewEUA(), euastar.NewDASA(), euastar.NewEDF(true))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n== %s ==\n", level.name)
		fmt.Printf("%-8s %12s %10s", "scheme", "utilityRatio", "energy")
		for _, pt := range reports[0].PerTask {
			fmt.Printf(" %12s", pt.Task.Name)
		}
		fmt.Println()
		for _, rep := range reports {
			fmt.Printf("%-8s %12.3f %10.3g", rep.Scheduler, rep.UtilityRatio(), rep.TotalEnergy)
			for _, pt := range rep.PerTask {
				fmt.Printf("    %4d/%-4d", pt.Met, pt.Released)
			}
			fmt.Println()
		}
	}
	fmt.Println("\nEUA* keeps the missile-control chain assured through saturation by")
	fmt.Println("shedding the broadcast and stale plots first, and it does so at a")
	fmt.Println("fraction of the fixed-frequency schedulers' energy while patrolling.")
}
