// Quickstart: define two tasks, run EUA* and the EDF baseline on the same
// realized workload, and compare accrued utility and energy.
package main

import (
	"fmt"
	"log"

	euastar "github.com/euastar/euastar"
)

func main() {
	// A periodic control task with a hard-deadline-style step TUF, and a
	// bursty sensor task (up to 2 arrivals per 80 ms sliding window) whose
	// value decays linearly with completion time.
	tasks := euastar.TaskSet{
		{
			ID:      1,
			Name:    "control",
			Arrival: euastar.Periodic(50 * euastar.Millisecond),
			TUF:     euastar.StepTUF(10, 50*euastar.Millisecond),
			Demand:  euastar.Demand{Mean: 4e6, Variance: 4e6},
			Req:     euastar.Requirement{Nu: 1, Rho: 0.96},
		},
		{
			ID:      2,
			Name:    "sensor",
			Arrival: euastar.UAM(2, 80*euastar.Millisecond),
			TUF:     euastar.LinearTUF(40, 0, 80*euastar.Millisecond),
			Demand:  euastar.Demand{Mean: 6e6, Variance: 6e6},
			Req:     euastar.Requirement{Nu: 0.3, Rho: 0.9},
		},
	}

	cfg := euastar.SimConfig{
		Tasks:              tasks,
		Horizon:            5, // seconds of arrivals
		Seed:               42,
		AbortAtTermination: true,
	}
	reports, err := euastar.Compare(cfg, euastar.NewEDF(true), euastar.NewEUA())
	if err != nil {
		log.Fatal(err)
	}
	baseline, eua := reports[0], reports[1]

	fmt.Printf("%-8s %10s %12s %10s %9s\n", "scheme", "jobs", "utility", "energy", "assured")
	for _, rep := range reports {
		fmt.Printf("%-8s %6d ok %12.1f %10.3g %9v\n",
			rep.Scheduler, rep.Completed, rep.AccruedUtility, rep.TotalEnergy, rep.AssuranceSatisfied())
	}

	n := euastar.Normalize(eua, baseline)
	fmt.Printf("\nEUA* vs EDF-fm: %.1f%% of the utility at %.1f%% of the energy\n",
		100*n.Utility, 100*n.Energy)
}
