// Shared bus: three activities on a sensor platform contend for a shared
// I²C bus (a single-unit, mutually exclusive resource). The example shows
// the resource extension of the simulator — blocking, execution
// inheritance (the bus holder runs when a more urgent activity waits on
// it), and how contention stretches completion times — together with
// EUA*'s energy behaviour under contention.
package main

import (
	"fmt"
	"log"

	euastar "github.com/euastar/euastar"
)

const ms = euastar.Millisecond

// tasks builds the platform workload; busFrac is the fraction of each
// job's work spent holding the bus.
func tasks(busFrac float64) euastar.TaskSet {
	return euastar.TaskSet{
		{
			ID: 1, Name: "imu",
			Arrival:  euastar.Periodic(10 * ms),
			TUF:      euastar.StepTUF(20, 10*ms),
			Demand:   euastar.Demand{Mean: 1e6, Variance: 1e6},
			Req:      euastar.Requirement{Nu: 1, Rho: 0.9},
			Sections: []euastar.Section{{Resource: 1, Start: 0, End: busFrac}},
		},
		{
			ID: 2, Name: "camera",
			Arrival:  euastar.UAM(2, 66*ms),
			TUF:      euastar.LinearTUF(35, 0, 66*ms),
			Demand:   euastar.Demand{Mean: 12e6, Variance: 12e6},
			Req:      euastar.Requirement{Nu: 0.3, Rho: 0.9},
			Sections: []euastar.Section{{Resource: 1, Start: 0.4, End: 0.4 + busFrac/2}},
		},
		{
			ID: 3, Name: "logger",
			Arrival: euastar.Periodic(100 * ms),
			TUF:     euastar.QuadraticTUF(5, 100*ms),
			Demand:  euastar.Demand{Mean: 6e6, Variance: 6e6},
			Req:     euastar.Requirement{Nu: 0.2, Rho: 0.8},
			// The logger drains buffers over the bus for most of its run.
			Sections: []euastar.Section{{Resource: 1, Start: 0.1, End: 0.1 + busFrac}},
		},
	}
}

func main() {
	fmt.Println("Shared-bus contention — EUA* with single-unit resources")
	fmt.Printf("%-12s %-8s %12s %10s %13s %9s\n",
		"bus share", "scheme", "utilityRatio", "energy", "inheritances", "assured")
	for _, busFrac := range []float64{0.1, 0.3, 0.6} {
		for _, mk := range []func() euastar.Scheduler{
			func() euastar.Scheduler { return euastar.NewEUA() },
			func() euastar.Scheduler { return euastar.NewEDF(true) },
		} {
			s := mk()
			res, err := euastar.Simulate(euastar.SimConfig{
				Tasks:              tasks(busFrac),
				Scheduler:          s,
				Horizon:            5,
				Seed:               17,
				AbortAtTermination: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			rep := euastar.Analyze(res)
			fmt.Printf("%-12.1f %-8s %12.3f %10.3g %13d %9v\n",
				busFrac, rep.Scheduler, rep.UtilityRatio(), rep.TotalEnergy,
				res.Inheritances, rep.AssuranceSatisfied())
		}
	}
	fmt.Println("\nLonger bus sections mean more blocking: urgent IMU samples wait for")
	fmt.Println("the logger's drain, which then executes under inheritance. EUA* keeps")
	fmt.Println("its energy advantage while honouring the mutual exclusion.")
}
