// Dual-core unlock: the same overloaded workload on one DVS core and on
// two, scheduled by partitioned EUA*.
//
// At system load 1.6 a single core is 60% oversubscribed — EUA* sheds
// the lowest-UER fraction of the work and the utility ratio caps well
// below 1. Partitioning the task set across two cores (first-fit over
// decreasing minimum frequency, the analytical admission bound as the
// capacity test) gives each core a feasible share: the shed work accrues
// on the second core, and per-core DVS keeps the added energy below the
// added capacity.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	euastar "github.com/euastar/euastar"
)

const ms = euastar.Millisecond

// buildTasks is a six-task sensor-fusion pipeline: three high-value
// fusion stages and three housekeeping activities, all step TUFs, sized
// so the set scales cleanly to any target load.
func buildTasks() euastar.TaskSet {
	mk := func(id int, name string, a int, p, umax, cycles float64) *euastar.Task {
		return &euastar.Task{
			ID:      id,
			Name:    name,
			Arrival: euastar.UAM(a, p),
			TUF:     euastar.StepTUF(umax, p),
			Demand:  euastar.Demand{Mean: cycles, Variance: cycles},
			Req:     euastar.Requirement{Nu: 0.3, Rho: 0.9},
		}
	}
	return euastar.TaskSet{
		mk(1, "fuse-radar", 2, 40*ms, 40, 6e6),
		mk(2, "fuse-lidar", 2, 50*ms, 36, 7e6),
		mk(3, "fuse-camera", 1, 30*ms, 30, 5e6),
		mk(4, "log-rotate", 1, 60*ms, 8, 6e6),
		mk(5, "health-ping", 2, 80*ms, 6, 7e6),
		mk(6, "ui-refresh", 1, 50*ms, 4, 5e6),
	}
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer) error {
	const load = 1.6
	ft := euastar.PowerNowK6()
	tasks := buildTasks().ScaleToLoad(load, ft.Max())

	base := euastar.SimConfig{
		Tasks:              tasks,
		Horizon:            4,
		Seed:               11,
		AbortAtTermination: true,
	}

	uni := base
	uni.Scheduler = euastar.NewEUA()
	uniRes, err := euastar.Simulate(uni)
	if err != nil {
		return err
	}
	uniRep := euastar.Analyze(uniRes)

	part, err := euastar.NewPartitioned(2, "ff", func() euastar.Scheduler { return euastar.NewEUA() })
	if err != nil {
		return err
	}
	dual := base
	dual.Scheduler = part
	dual.Cores = 2
	dualRes, err := euastar.Simulate(dual)
	if err != nil {
		return err
	}
	dualRep := euastar.Analyze(dualRes)

	fmt.Fprintf(out, "Dual-core unlock — partitioned EUA* at system load %.2f\n\n", load)
	fmt.Fprintf(out, "%-12s %10s %8s %10s %11s\n", "config", "utility", "ratio", "energy", "migrations")
	fmt.Fprintf(out, "%-12s %10.1f %8.3f %10.3g %11s\n",
		uniRep.Scheduler, uniRep.AccruedUtility, uniRep.UtilityRatio(), uniRep.TotalEnergy, "-")
	fmt.Fprintf(out, "%-12s %10.1f %8.3f %10.3g %11d\n",
		dualRep.Scheduler, dualRep.AccruedUtility, dualRep.UtilityRatio(), dualRep.TotalEnergy, dualRes.Migrations)

	fmt.Fprintf(out, "\nper-core breakdown (2-core run):\n")
	for k, cr := range dualRes.PerCore {
		fmt.Fprintf(out, "  core %d: energy %.3g  busy %.0f ms  %d switches\n",
			k, cr.Energy, cr.BusyTime*1e3, cr.Switches)
	}

	n := euastar.Normalize(dualRep, uniRep)
	fmt.Fprintf(out, "\nThe work the single core had to shed accrues on the second core:\n")
	fmt.Fprintf(out, "%.2fx the utility for %.2fx the energy.\n", n.Utility, n.Energy)
	return nil
}
