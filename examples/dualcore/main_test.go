package main

import (
	"strings"
	"testing"
)

// golden is the example's exact expected output. The run is fully
// deterministic (fixed seed, fixed workload), so any drift here means
// the multiprocessor engine's accounting changed — investigate before
// refreshing the text.
const golden = `Dual-core unlock — partitioned EUA* at system load 1.60

config          utility    ratio     energy  migrations
EUA*            15846.0    0.824      4e+27           -
EUA*/P2ff       19236.0    1.000   5.13e+27           0

per-core breakdown (2-core run):
  core 0: energy 3.86e+27  busy 3884 ms  19 switches
  core 1: energy 1.27e+27  busy 3912 ms  442 switches

The work the single core had to shed accrues on the second core:
1.21x the utility for 1.28x the energy.
`

func TestGoldenOutput(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != golden {
		t.Fatalf("output drifted from golden:\n--- got ---\n%s--- want ---\n%s", sb.String(), golden)
	}
}

// TestDualCoreBeatsUniprocessor pins the example's claim independent of
// the exact golden numbers: at load 1.6 the 2-core partitioned run must
// accrue strictly more utility than the uniprocessor run.
func TestDualCoreBeatsUniprocessor(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "EUA*/P2ff") {
		t.Fatalf("partitioned run missing from output:\n%s", out)
	}
	// The normalized-utility line reports dual/uni; > 1 is the unlock.
	if !strings.Contains(out, "1.21x the utility") {
		t.Fatalf("dual-core utility gain missing from output:\n%s", out)
	}
}
