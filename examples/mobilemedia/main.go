// Mobile media player: a battery-powered device decoding video frames,
// mixing audio and polling the UI — the consumer-electronics setting of
// the paper's introduction. The example compares the three Table 2 energy
// models on the same workload and shows the paper's key systems insight:
// under a system-level model with constant-power components (E3), running
// as slowly as possible wastes energy, and EUA*'s UER-optimal frequency
// clamp keeps execution near the true energy optimum instead.
package main

import (
	"fmt"
	"log"

	euastar "github.com/euastar/euastar"
)

const ms = euastar.Millisecond

func main() {
	// 30 fps decode with occasional double frames after seeks (UAM ⟨2,P⟩),
	// 10 ms audio mixing, sporadic UI events.
	tasks := euastar.TaskSet{
		{
			ID: 1, Name: "video",
			Arrival: euastar.UAM(2, 33.3*ms),
			TUF:     euastar.LinearTUF(30, 0, 33.3*ms),
			Demand:  euastar.Demand{Mean: 5e6, Variance: 10e6},
			Req:     euastar.Requirement{Nu: 0.4, Rho: 0.95},
		},
		{
			ID: 2, Name: "audio",
			Arrival: euastar.Periodic(10 * ms),
			TUF:     euastar.StepTUF(20, 10*ms),
			Demand:  euastar.Demand{Mean: 8e5, Variance: 8e5},
			Req:     euastar.Requirement{Nu: 1, Rho: 0.96},
		},
		{
			ID: 3, Name: "ui",
			Arrival: euastar.UAM(3, 100*ms),
			TUF:     euastar.ExponentialTUF(8, 30*ms, 100*ms),
			Demand:  euastar.Demand{Mean: 1.5e6, Variance: 3e6},
			Req:     euastar.Requirement{Nu: 0.3, Rho: 0.9},
		},
	}

	ft := euastar.PowerNowK6()
	fmt.Println("Mobile media player — system-level energy models (Table 2)")
	fmt.Printf("%-6s %-22s %14s %14s %8s\n",
		"model", "subsystems", "EUA* energy", "EDF-fm energy", "saving")
	desc := map[string]string{
		"E1": "CPU only",
		"E2": "CPU + memory bus",
		"E3": "CPU + display backlight",
	}
	for _, name := range []string{"E1", "E2", "E3"} {
		model, err := euastar.EnergyPreset(name, ft.Max())
		if err != nil {
			log.Fatal(err)
		}
		cfg := euastar.SimConfig{
			Tasks:              tasks,
			Freqs:              ft,
			Energy:             model,
			Horizon:            10,
			Seed:               3,
			AbortAtTermination: true,
		}
		reports, err := euastar.Compare(cfg, euastar.NewEUA(), euastar.NewEDF(true))
		if err != nil {
			log.Fatal(err)
		}
		n := euastar.Normalize(reports[0], reports[1])
		fmt.Printf("%-6s %-22s %14.4g %14.4g %7.1f%%\n",
			name, desc[name], reports[0].TotalEnergy, reports[1].TotalEnergy,
			100*(1-n.Energy))
		if !reports[0].AssuranceSatisfied() {
			fmt.Printf("  WARNING: {nu, rho} violated under %s\n", name)
		}
	}

	fmt.Println("\nUnder E1/E2 the slowest sufficient clock wins; under E3 the display")
	fmt.Println("keeps drawing power while the CPU crawls, so EUA* clamps execution to")
	fmt.Println("the UER-optimal ~820 MHz step and still beats the fixed-frequency EDF.")
}
