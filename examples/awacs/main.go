// AWACS: the adaptive airborne tracking scenario that motivates the
// paper's Figure 1(a). A surveillance radar feeds a track-association
// activity whose utility erodes as sensor reports age, alongside plot
// correlation with a plateaued piecewise-linear TUF and a display update
// with a classical deadline.
//
// The example sweeps the radar's report rate from quiet skies into a
// dense-raid overload and shows how EUA* degrades: it sheds the
// low-utility display refreshes to keep accruing track-association
// utility, while plain EDF treats urgency as importance and loses more
// total utility.
package main

import (
	"fmt"
	"log"

	euastar "github.com/euastar/euastar"
)

const ms = euastar.Millisecond

func buildTasks(reportCycles float64) euastar.TaskSet {
	// Track association: up to 4 correlated sensor reports per 100 ms
	// sliding window (a raid arrives together); utility decays
	// exponentially with staleness (Figure 1(a)'s eroding shape).
	trackAssoc := &euastar.Task{
		ID:      1,
		Name:    "track-assoc",
		Arrival: euastar.UAM(4, 100*ms),
		TUF:     euastar.ExponentialTUF(60, 40*ms, 100*ms),
		Demand:  euastar.Demand{Mean: reportCycles, Variance: reportCycles},
		Req:     euastar.Requirement{Nu: 0.3, Rho: 0.9},
	}

	// Plot correlation: full value while the plot is fresh (first 20 ms),
	// then linear decay — the plateaued TUF of Figure 1(b).
	plotTUF, err := euastar.PiecewiseTUF(
		[2]float64{0, 30},
		[2]float64{20 * ms, 30},
		[2]float64{80 * ms, 0},
	)
	if err != nil {
		log.Fatal(err)
	}
	plotCorr := &euastar.Task{
		ID:      2,
		Name:    "plot-corr",
		Arrival: euastar.UAM(2, 80*ms),
		TUF:     plotTUF,
		Demand:  euastar.Demand{Mean: reportCycles * 0.8, Variance: reportCycles * 0.8},
		Req:     euastar.Requirement{Nu: 0.3, Rho: 0.9},
	}

	// Operator display refresh: periodic, low utility, hard step deadline.
	display := &euastar.Task{
		ID:      3,
		Name:    "display",
		Arrival: euastar.Periodic(50 * ms),
		TUF:     euastar.StepTUF(2, 50*ms),
		Demand:  euastar.Demand{Mean: reportCycles * 0.5, Variance: reportCycles * 0.5},
		Req:     euastar.Requirement{Nu: 1, Rho: 0.9},
	}
	return euastar.TaskSet{trackAssoc, plotCorr, display}
}

func main() {
	fmt.Println("AWACS tracking — EUA* vs EDF across raid densities")
	fmt.Printf("%-12s %-8s %12s %12s %10s\n", "scenario", "scheme", "utilityRatio", "trackMet", "energy")

	scenarios := []struct {
		name   string
		cycles float64 // per-report association work
	}{
		{"quiet", 2e6},
		{"busy", 8e6},
		{"raid", 20e6}, // persistent overload
	}
	for _, sc := range scenarios {
		tasks := buildTasks(sc.cycles)
		cfg := euastar.SimConfig{
			Tasks:              tasks,
			Horizon:            5,
			Seed:               7,
			AbortAtTermination: true,
		}
		reports, err := euastar.Compare(cfg, euastar.NewEUA(), euastar.NewEDF(true))
		if err != nil {
			log.Fatal(err)
		}
		for _, rep := range reports {
			track := rep.PerTask[0]
			fmt.Printf("%-12s %-8s %12.3f %8d/%-3d %10.3g\n",
				sc.name, rep.Scheduler, rep.UtilityRatio(),
				track.Met, track.Released, rep.TotalEnergy)
		}
	}
	fmt.Println("\nDuring the raid, EUA* sheds display refreshes and late plots to")
	fmt.Println("keep associating tracks; EDF spends the saturated processor on")
	fmt.Println("whatever is most urgent, regardless of its worth.")
}
