// Package euastar is the public API of the EUA* library — a from-scratch
// Go reproduction of "Energy-Efficient, Utility Accrual Real-Time
// Scheduling Under the Unimodal Arbitrary Arrival Model" (Wu, Ravindran,
// Jensen — DATE 2005).
//
// The library provides:
//
//   - the task model of the paper: independent preemptive tasks with
//     Unimodal Arbitrary Arrival Model (UAM) specifications ⟨a, P⟩,
//     time/utility function (TUF) time constraints, stochastic cycle
//     demands, and per-task statistical requirements {ν, ρ};
//   - the EUA* scheduler (the paper's contribution) plus the baselines it
//     is evaluated against: EDF at the highest frequency, Pillai–Shin
//     cycle-conserving EDF and look-ahead EDF (with and without
//     abortion), and DASA;
//   - a discrete-event simulator with DVS (frequency scaling), Martin's
//     system-level energy model, abortion semantics and exact cycle
//     accounting — on one processor or, via SimConfig.Cores with a
//     NewPartitioned/NewGlobalUER scheduler, on m independent DVS cores;
//   - metrics and the experiment harness that regenerate every table and
//     figure of the paper's evaluation.
//
// # Quick start
//
//	tasks := euastar.TaskSet{{
//		ID:      1,
//		Arrival: euastar.UAM(2, 50*euastar.Millisecond),
//		TUF:     euastar.StepTUF(10, 50*euastar.Millisecond),
//		Demand:  euastar.Demand{Mean: 5e6, Variance: 5e6},
//		Req:     euastar.Requirement{Nu: 1, Rho: 0.96},
//	}}
//	res, err := euastar.Simulate(euastar.SimConfig{
//		Tasks:     tasks,
//		Scheduler: euastar.NewEUA(),
//		Horizon:   2, // seconds
//	})
//	report := euastar.Analyze(res)
//
// All simulation quantities use SI base units: seconds for time, hertz for
// frequency, processor cycles for work.
package euastar

import (
	"fmt"

	"github.com/euastar/euastar/internal/admission"
	"github.com/euastar/euastar/internal/analysis"
	"github.com/euastar/euastar/internal/cpu"
	"github.com/euastar/euastar/internal/energy"
	"github.com/euastar/euastar/internal/engine"
	"github.com/euastar/euastar/internal/metrics"
	"github.com/euastar/euastar/internal/profile"
	"github.com/euastar/euastar/internal/sched"
	"github.com/euastar/euastar/internal/sched/ccedf"
	"github.com/euastar/euastar/internal/sched/dasa"
	"github.com/euastar/euastar/internal/sched/edf"
	"github.com/euastar/euastar/internal/sched/eua"
	"github.com/euastar/euastar/internal/sched/gus"
	"github.com/euastar/euastar/internal/sched/laedf"
	"github.com/euastar/euastar/internal/sched/partition"
	"github.com/euastar/euastar/internal/sched/staticedf"
	"github.com/euastar/euastar/internal/task"
	"github.com/euastar/euastar/internal/tuf"
	"github.com/euastar/euastar/internal/uam"
)

// Millisecond expresses milliseconds in the library's second-based time
// unit, for readable task definitions.
const Millisecond = 1e-3

// Core model types, re-exported from the internal packages so that typical
// programs import only euastar.
type (
	// Task is one application activity T_i (UAM arrivals, TUF constraint,
	// stochastic demand, statistical requirement).
	Task = task.Task
	// TaskSet is an ordered collection of tasks.
	TaskSet = task.Set
	// Job is one task invocation, the basic scheduling entity.
	Job = task.Job
	// Demand is a stochastic cycle demand described by mean and variance.
	Demand = task.Demand
	// Requirement is the statistical timeliness requirement {ν, ρ}.
	Requirement = task.Requirement
	// Section is a critical section on a single-unit resource, expressed
	// as a fraction span of the job's cycles. Contended sections block;
	// the simulator executes the blocking chain's head (inheritance) and
	// resolves deadlocks by aborting the selected job.
	Section = task.Section
	// TUF is a non-increasing unimodal time/utility function.
	TUF = tuf.TUF
	// UAMSpec is a Unimodal Arbitrary Arrival Model bound ⟨a, P⟩.
	UAMSpec = uam.Spec
	// ArrivalGenerator produces UAM-compliant arrival traces.
	ArrivalGenerator = uam.Generator
	// FrequencyTable is the DVS processor's discrete frequency ladder.
	FrequencyTable = cpu.FrequencyTable
	// EnergyModel is Martin's system-level energy model E(f).
	EnergyModel = energy.Model
	// Scheduler is a sequencing algorithm driven by the simulator.
	Scheduler = sched.Scheduler
	// SimConfig parameterizes one simulation run.
	SimConfig = engine.Config
	// Result is a finished run: resolved jobs plus energy accounting.
	Result = engine.Result
	// Span is one contiguous stretch of recorded execution.
	Span = engine.Span
	// Report is the metrics analysis of a Result.
	Report = metrics.Report
	// TaskStats is the per-task portion of a Report.
	TaskStats = metrics.TaskStats
	// EUAOption configures the EUA* scheduler (ablation switches).
	EUAOption = eua.Option
)

// UAM builds the arrival specification ⟨a, P⟩: at most a arrivals in any
// sliding window of P seconds.
func UAM(a int, p float64) UAMSpec { return UAMSpec{A: a, P: p} }

// Periodic builds the classical periodic arrival model, the UAM special
// case ⟨1, P⟩.
func Periodic(p float64) UAMSpec { return UAMSpec{A: 1, P: p} }

// StepTUF returns the classical hard-deadline constraint as a TUF:
// utility height up to the deadline, zero after (Figure 1(d)).
func StepTUF(height, deadline float64) TUF { return tuf.NewStep(height, deadline) }

// LinearTUF returns a linearly decaying TUF from u0 at completion time 0
// to uEnd at the horizon.
func LinearTUF(u0, uEnd, horizon float64) TUF { return tuf.NewLinear(u0, uEnd, horizon) }

// QuadraticTUF returns a TUF decaying as u0·(1 − (t/horizon)²).
func QuadraticTUF(u0, horizon float64) TUF { return tuf.NewQuadratic(u0, horizon) }

// ExponentialTUF returns a TUF decaying as u0·exp(−t/tau) on [0, horizon].
func ExponentialTUF(u0, tau, horizon float64) TUF { return tuf.NewExponential(u0, tau, horizon) }

// PiecewiseTUF returns a piecewise-linear TUF through (time, utility)
// knots. Knots must start at time 0, strictly increase in time and be
// non-increasing in utility.
func PiecewiseTUF(points ...[2]float64) (TUF, error) {
	pts := make([]tuf.Point, len(points))
	for i, p := range points {
		pts[i] = tuf.Point{T: p[0], U: p[1]}
	}
	return tuf.NewPiecewiseLinear(pts)
}

// PowerNowK6 returns the paper's evaluation platform: the seven PowerNow!
// frequency steps of the mobile AMD K6-2+ ({360 … 1000} MHz).
func PowerNowK6() FrequencyTable { return cpu.PowerNowK6() }

// Energy presets of the paper's Table 2, instantiated for a processor with
// maximum frequency fmax: "E1" (CPU-only cubic), "E2" (plus a
// frequency-proportional subsystem) and "E3" (plus a constant-power
// subsystem, which creates an interior energy-optimal frequency).
func EnergyPreset(name string, fmax float64) (EnergyModel, error) {
	return energy.NewPreset(energy.Preset(name), fmax)
}

// NewEUA returns the paper's EUA* scheduler. Options disable individual
// mechanisms for ablation studies; see the eua package constants
// re-exported below.
func NewEUA(opts ...EUAOption) Scheduler { return eua.New(opts...) }

// EUA* ablation options.
var (
	// WithoutDVS pins EUA* to the highest frequency (Figure 3's
	// normalization baseline).
	WithoutDVS = eua.WithoutDVS
	// WithoutUERInsertion replaces UER-greedy construction with EDF order.
	WithoutUERInsertion = eua.WithoutUERInsertion
	// WithoutFoClamp drops the UER-optimal frequency lower bound.
	WithoutFoClamp = eua.WithoutFoClamp
	// WithoutWindowedDemand uses per-job instead of per-window demand.
	WithoutWindowedDemand = eua.WithoutWindowedDemand
	// WithoutPhantomReservation reverts to the literal Algorithm 2
	// (aggressive deferral; see DESIGN.md).
	WithoutPhantomReservation = eua.WithoutPhantomReservation
	// WithStrictBreak stops greedy insertion at the first infeasible job.
	WithStrictBreak = eua.WithStrictBreak
	// WithBudgetAwareness(lookahead) rations a finite energy budget
	// (SimConfig.EnergyBudget) toward the highest utility-per-energy work
	// once the projected battery lifetime falls below the given mission
	// lookahead in seconds (0 = a few task windows).
	WithBudgetAwareness = eua.WithBudgetAwareness
)

// NewEDF returns EDF on critical times at the fixed highest frequency —
// the paper's normalization baseline. abortInfeasible selects whether
// doomed jobs are dropped (true) or left to run (false).
func NewEDF(abortInfeasible bool) Scheduler { return edf.New(abortInfeasible) }

// NewCCEDF returns Pillai–Shin cycle-conserving EDF.
func NewCCEDF(abortInfeasible bool) Scheduler { return ccedf.New(abortInfeasible) }

// NewLAEDF returns Pillai–Shin look-ahead EDF; with abortInfeasible =
// false this is the paper's "-NA" domino-effect baseline.
func NewLAEDF(abortInfeasible bool) Scheduler { return laedf.New(abortInfeasible) }

// NewDASA returns Locke's best-effort utility-accrual scheduler (no DVS).
func NewDASA() Scheduler { return dasa.New() }

// NewStaticEDF returns statically-scaled EDF (the first Pillai–Shin RT-DVS
// algorithm): plain EDF at the single lowest frequency covering the task
// set's allocated utilization, chosen once at Init.
func NewStaticEDF(abortInfeasible bool) Scheduler { return staticedf.New(abortInfeasible) }

// NewGUS returns GUS (Li & Ravindran), the dependency-aware
// utility-accrual baseline: jobs are ranked by the potential utility
// density of their whole blocking chain; no DVS.
func NewGUS() Scheduler { return gus.New() }

// NewPartitioned returns a partitioned multiprocessor scheduler for
// SimConfig.Cores DVS cores: tasks are packed onto cores at Init time
// (policy "ff" first-fit or "wf" worst-fit, decreasing minimum-frequency
// order, the analytical admission bound as the capacity test), and each
// core runs its own instance built by factory — so partitioned EUA* is
// NewPartitioned(m, "ff", func() euastar.Scheduler { return euastar.NewEUA() }).
// Jobs never migrate. cores must be >= 1 and match SimConfig.Cores.
func NewPartitioned(cores int, policy string, factory func() Scheduler) (Scheduler, error) {
	if cores < 1 {
		return nil, fmt.Errorf("euastar: partitioned scheduler needs cores >= 1, got %d", cores)
	}
	p, err := partition.ParsePolicy(policy)
	if err != nil {
		return nil, err
	}
	return partition.New(cores, p, factory), nil
}

// NewGlobalUER returns the global multiprocessor dispatcher for
// SimConfig.Cores DVS cores: one shared ready queue ranked by utility
// and energy rate, the top m jobs dispatched each decision with core
// stickiness; Result.Migrations counts the cross-core moves.
func NewGlobalUER(cores int) (Scheduler, error) {
	if cores < 1 {
		return nil, fmt.Errorf("euastar: global scheduler needs cores >= 1, got %d", cores)
	}
	return partition.NewGlobal(cores), nil
}

// NewProfiler returns an online demand-moment estimator to assign to
// Task.Profiler: it reports the given design-time prior until minSamples
// completed jobs have been observed, then the empirical moments. The
// simulator feeds it automatically at every completion of the task's jobs.
func NewProfiler(priorMean, priorVariance float64, minSamples int) (*Profiler, error) {
	return profile.New(priorMean, priorVariance, minSamples)
}

// Profiler is the online demand estimator type (see NewProfiler).
type Profiler = profile.Estimator

// Simulate runs one simulation. Unset platform fields default to the
// paper's: the PowerNow! K6-2+ frequency table, energy model E1, and
// abortion at termination time for schedulers that abort (EDF-NA-style
// configs should set AbortAtTermination explicitly).
func Simulate(cfg SimConfig) (*Result, error) {
	if cfg.Freqs == nil {
		cfg.Freqs = PowerNowK6()
	}
	if cfg.Energy == (EnergyModel{}) {
		m, err := EnergyPreset("E1", cfg.Freqs.Max())
		if err != nil {
			return nil, err
		}
		cfg.Energy = m
	}
	return engine.Run(cfg)
}

// Analyze computes the metrics report of a finished run: accrued utility,
// energy, per-task {ν, ρ} verification, lateness and miss counts.
func Analyze(res *Result) *Report { return metrics.Analyze(res) }

// Compare runs every scheduler on the identical realized workload (same
// arrivals, same demands) and returns the reports in scheduler order —
// the normalization workflow of the paper's Section 5.
func Compare(cfg SimConfig, schedulers ...Scheduler) ([]*Report, error) {
	if len(schedulers) == 0 {
		return nil, fmt.Errorf("euastar: no schedulers to compare")
	}
	reports := make([]*Report, len(schedulers))
	for i, s := range schedulers {
		c := cfg
		c.Scheduler = s
		res, err := Simulate(c)
		if err != nil {
			return nil, fmt.Errorf("euastar: %s: %w", s.Name(), err)
		}
		reports[i] = Analyze(res)
	}
	return reports, nil
}

// Normalize expresses a report's utility and energy relative to a baseline
// report obtained on the same workload.
func Normalize(r, baseline *Report) metrics.Normalized { return metrics.Normalize(r, baseline) }

// Schedulable reports whether the task set meets every critical time under
// preemptive EDF at constant frequency f against the UAM adversary, per
// the Baruah–Rosier–Howell processor-demand criterion the paper's
// Theorem 6 invokes. When it does not, witness is an interval length whose
// demand exceeds capacity.
func Schedulable(tasks TaskSet, f float64) (ok bool, witness float64) {
	return analysis.Schedulable(tasks, f)
}

// MinimumFrequency returns the lowest frequency of the table at which the
// set is schedulable (exact demand-bound analysis, never above the
// Theorem 1 provisioning Σ C_i/D_i), and whether any table frequency
// suffices.
func MinimumFrequency(tasks TaskSet, table FrequencyTable) (float64, bool) {
	return analysis.MinimumFrequency(tasks, table)
}

// TheoremOneFrequency returns the paper's Theorem 1 provisioning
// Σ_i C_i/D_i — the conservative constant frequency meeting all critical
// times.
func TheoremOneFrequency(tasks TaskSet) float64 {
	return analysis.TheoremOneFrequency(tasks)
}

// AdmissionResult is the verdict of the O(n) analytical admission triage
// (internal/admission): Accept, Reject, or MustSimulate, with the
// quantitative facts it was derived from.
type AdmissionResult = admission.Result

// Admission verdict values.
const (
	AdmissionAccept       = admission.Accept
	AdmissionReject       = admission.Reject
	AdmissionMustSimulate = admission.MustSimulate
)

// Admit triages the task set for the named scheduling scheme (experiment
// names, e.g. "EUA*", "EDF-fm", "GUS") on the given frequency ladder:
// Accept when a sufficient schedulability test passes with the
// Cantelli-allocated demand, Reject when a necessary condition is
// violated, MustSimulate in between. This is the same test euad's
// fast-reject path and euasim -admit run.
func Admit(tasks TaskSet, table FrequencyTable, scheme string) (AdmissionResult, error) {
	return admission.Analyze(tasks, table, scheme)
}
