// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section 5), plus the ablation studies listed in DESIGN.md
// and micro-benchmarks of the scheduler itself.
//
// Each figure benchmark regenerates its full series once (printed via
// b.Logf so `go test -bench` output contains the reproduced rows) and then
// times one representative simulation per iteration.
package euastar_test

import (
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	euastar "github.com/euastar/euastar"
	"github.com/euastar/euastar/internal/energy"
	"github.com/euastar/euastar/internal/experiment"
)

// benchCfg is the shared sweep configuration for the figure benchmarks:
// small enough to finish in seconds, dense enough to show the shapes.
func benchCfg(preset energy.Preset) experiment.Config {
	return experiment.Config{
		Energy:  preset,
		Loads:   []float64{0.2, 0.6, 1.0, 1.4, 1.8},
		Seeds:   []uint64{1, 2},
		Horizon: 0.5,
	}
}

var (
	fig2Once   sync.Once
	fig2Series = map[energy.Preset][]experiment.Row{}
	fig2Err    error
)

func fig2Rows(b *testing.B, preset energy.Preset) []experiment.Row {
	b.Helper()
	fig2Once.Do(func() {
		for _, p := range []energy.Preset{energy.E1, energy.E2, energy.E3} {
			rows, err := experiment.Figure2(benchCfg(p))
			if err != nil {
				fig2Err = err
				return
			}
			fig2Series[p] = rows
		}
	})
	if fig2Err != nil {
		b.Fatal(fig2Err)
	}
	return fig2Series[preset]
}

func logRows(b *testing.B, title string, rows []experiment.Row) {
	b.Helper()
	var sb strings.Builder
	if err := experiment.WriteRows(&sb, title, rows); err != nil {
		b.Fatal(err)
	}
	b.Logf("\n%s", sb.String())
}

// timeOneRun times a single representative simulation (the unit of work
// every figure is built from).
func timeOneRun(b *testing.B, scheduler func() euastar.Scheduler, load float64) {
	b.Helper()
	tasks := demoTasks().ScaleToLoad(load, euastar.PowerNowK6().Max())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := euastar.Simulate(euastar.SimConfig{
			Tasks:              tasks,
			Scheduler:          scheduler(),
			Horizon:            0.5,
			Seed:               uint64(i + 1),
			AbortAtTermination: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Jobs) == 0 {
			b.Fatal("no jobs")
		}
	}
}

// BenchmarkTable1TaskSettings regenerates Table 1.
func BenchmarkTable1TaskSettings(b *testing.B) {
	var sb strings.Builder
	if err := experiment.WriteTable1(&sb); err != nil {
		b.Fatal(err)
	}
	b.Logf("\n%s", sb.String())
	for i := 0; i < b.N; i++ {
		sb.Reset()
		if err := experiment.WriteTable1(&sb); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2EnergySettings regenerates Table 2.
func BenchmarkTable2EnergySettings(b *testing.B) {
	var sb strings.Builder
	if err := experiment.WriteTable2(&sb); err != nil {
		b.Fatal(err)
	}
	b.Logf("\n%s", sb.String())
	for i := 0; i < b.N; i++ {
		sb.Reset()
		if err := experiment.WriteTable2(&sb); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2aUtilityE1 regenerates Figure 2(a): normalized utility vs
// load under E1. The reproduced claims: all schemes optimal during
// underloads, EUA* highest during overloads, laEDF-NA collapsing.
func BenchmarkFig2aUtilityE1(b *testing.B) {
	rows := fig2Rows(b, energy.E1)
	logRows(b, "Figure 2(a)+(b) — E1", rows)
	last := rows[len(rows)-1]
	b.ReportMetric(last.Utility["EUA*"], "eua-utility@1.8")
	b.ReportMetric(last.Utility["laEDF-NA"], "na-utility@1.8")
	timeOneRun(b, func() euastar.Scheduler { return euastar.NewEUA() }, 1.8)
}

// BenchmarkFig2bEnergyE1 regenerates Figure 2(b): normalized energy vs
// load under E1 (EUA* lowest during underloads; -NA grows linearly).
func BenchmarkFig2bEnergyE1(b *testing.B) {
	rows := fig2Rows(b, energy.E1)
	first, last := rows[0], rows[len(rows)-1]
	b.ReportMetric(first.Energy["EUA*"], "eua-energy@0.2")
	b.ReportMetric(last.Energy["laEDF-NA"], "na-energy@1.8")
	timeOneRun(b, func() euastar.Scheduler { return euastar.NewEUA() }, 0.2)
}

// BenchmarkFig2cUtilityE3 regenerates Figure 2(c) under E3.
func BenchmarkFig2cUtilityE3(b *testing.B) {
	rows := fig2Rows(b, energy.E3)
	logRows(b, "Figure 2(c)+(d) — E3", rows)
	last := rows[len(rows)-1]
	b.ReportMetric(last.Utility["EUA*"], "eua-utility@1.8")
	timeOneRun(b, func() euastar.Scheduler { return euastar.NewEUA() }, 1.8)
}

// BenchmarkFig2dEnergyE3 regenerates Figure 2(d) under E3.
func BenchmarkFig2dEnergyE3(b *testing.B) {
	rows := fig2Rows(b, energy.E3)
	first := rows[0]
	b.ReportMetric(first.Energy["EUA*"], "eua-energy@0.2")
	timeOneRun(b, func() euastar.Scheduler { return euastar.NewEUA() }, 0.2)
}

// BenchmarkFig2E2Similar verifies the paper's remark that "results under
// E2 are similar" to E1.
func BenchmarkFig2E2Similar(b *testing.B) {
	rows := fig2Rows(b, energy.E2)
	logRows(b, "Figure 2 — E2 (text: 'results under E2 are similar')", rows)
	first := rows[0]
	b.ReportMetric(first.Energy["EUA*"], "eua-energy@0.2")
	timeOneRun(b, func() euastar.Scheduler { return euastar.NewEUA() }, 0.6)
}

// BenchmarkFig3UAMEnergy regenerates Figure 3: EUA*'s energy (normalized
// to EUA* without DVS) for UAM bounds ⟨1,P⟩, ⟨2,P⟩, ⟨3,P⟩ — increasing
// with a during underloads, converging during overloads.
func BenchmarkFig3UAMEnergy(b *testing.B) {
	cfg := experiment.Config{
		Energy:  energy.E1,
		Loads:   []float64{0.3, 0.5, 0.7, 0.9, 1.1, 1.5},
		Seeds:   []uint64{1, 2, 3},
		Horizon: 1.5,
	}
	rows, err := experiment.Figure3(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	var sb strings.Builder
	if err := experiment.WriteFig3(&sb, rows); err != nil {
		b.Fatal(err)
	}
	b.Logf("\n%s", sb.String())
	for _, r := range rows {
		if r.Load == 0.7 {
			b.ReportMetric(r.Energy[1], "energy@0.7/a=1")
			b.ReportMetric(r.Energy[3], "energy@0.7/a=3")
		}
	}
	timeOneRun(b, func() euastar.Scheduler { return euastar.NewEUA() }, 0.7)
}

// BenchmarkAssuranceTheorems empirically verifies the Section 4 claims:
// during underloads EUA* satisfies every {ν, ρ} requirement.
func BenchmarkAssuranceTheorems(b *testing.B) {
	cfg := experiment.Config{
		Energy:  energy.E1,
		Loads:   []float64{0.3, 0.6, 0.9},
		Seeds:   []uint64{1, 2, 3},
		Horizon: 1.0,
	}
	rows, err := experiment.Assurance(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var sb strings.Builder
	if err := experiment.WriteAssurance(&sb, rows); err != nil {
		b.Fatal(err)
	}
	b.Logf("\n%s", sb.String())
	b.ReportMetric(rows[0].Satisfied["EUA*"], "assured@0.3")
	b.ReportMetric(rows[2].Satisfied["EUA*"], "assured@0.9")
	timeOneRun(b, func() euastar.Scheduler { return euastar.NewEUA() }, 0.6)
}

var (
	ablationOnce sync.Once
	ablationRows []experiment.Row
	ablationErr  error
)

func getAblation(b *testing.B) []experiment.Row {
	b.Helper()
	ablationOnce.Do(func() {
		cfg := experiment.Config{
			Energy:  energy.E3, // E3 exposes the f^o clamp
			Loads:   []float64{0.4, 0.8, 1.4},
			Seeds:   []uint64{1, 2},
			Horizon: 0.5,
		}
		ablationRows, ablationErr = experiment.Ablation(cfg)
	})
	if ablationErr != nil {
		b.Fatal(ablationErr)
	}
	return ablationRows
}

// BenchmarkAblationUERInsertion quantifies the UER-greedy construction:
// without it, overload utility drops toward EDF's.
func BenchmarkAblationUERInsertion(b *testing.B) {
	rows := getAblation(b)
	logRows(b, "Ablation (E3)", rows)
	over := rows[len(rows)-1]
	b.ReportMetric(over.Utility["EUA*"], "eua-utility@1.4")
	b.ReportMetric(over.Utility["EUA*-noUER"], "noUER-utility@1.4")
	timeOneRun(b, func() euastar.Scheduler { return euastar.NewEUA(euastar.WithoutUERInsertion()) }, 1.4)
}

// BenchmarkAblationFoClamp quantifies the UER-optimal frequency clamp
// under E3 (where running too slowly wastes constant-power energy).
func BenchmarkAblationFoClamp(b *testing.B) {
	rows := getAblation(b)
	under := rows[0]
	b.ReportMetric(under.Energy["EUA*"], "eua-energy@0.4")
	b.ReportMetric(under.Energy["EUA*-noFo"], "noFo-energy@0.4")
	timeOneRun(b, func() euastar.Scheduler { return euastar.NewEUA(euastar.WithoutFoClamp()) }, 0.4)
}

// BenchmarkAblationWindowedDemand quantifies the UAM windowed-demand
// bookkeeping C_i^r.
func BenchmarkAblationWindowedDemand(b *testing.B) {
	rows := getAblation(b)
	mid := rows[1]
	b.ReportMetric(mid.Utility["EUA*"], "eua-utility@0.8")
	b.ReportMetric(mid.Utility["EUA*-noWin"], "noWin-utility@0.8")
	timeOneRun(b, func() euastar.Scheduler { return euastar.NewEUA(euastar.WithoutWindowedDemand()) }, 0.8)
}

// BenchmarkAblationPhantomReservation quantifies the phantom-arrival
// reservation DESIGN.md documents (safety of the deferral under UAM).
func BenchmarkAblationPhantomReservation(b *testing.B) {
	rows := getAblation(b)
	mid := rows[1]
	b.ReportMetric(mid.Utility["EUA*"], "eua-utility@0.8")
	b.ReportMetric(mid.Utility["EUA*-noPhantom"], "noPhantom-utility@0.8")
	timeOneRun(b, func() euastar.Scheduler { return euastar.NewEUA(euastar.WithoutPhantomReservation()) }, 0.8)
}

// BenchmarkAblationAbortPolicy quantifies termination-time abortion: the
// domino effect of the -NA policy during overload.
func BenchmarkAblationAbortPolicy(b *testing.B) {
	rows := fig2Rows(b, energy.E1)
	over := rows[len(rows)-1]
	b.ReportMetric(over.Utility["laEDF"], "abort-utility@1.8")
	b.ReportMetric(over.Utility["laEDF-NA"], "na-utility@1.8")
	timeOneRun(b, func() euastar.Scheduler { return euastar.NewLAEDF(false) }, 1.8)
}

// BenchmarkParallelSweepSpeedup measures the parallel experiment runner:
// each iteration runs the same Figure-2 sweep with Workers=1 and
// Workers=GOMAXPROCS and reports the wall-clock ratio as "speedup-x".
// The sweep is embarrassingly parallel (loads × seeds × schemes), so on
// an N-core machine the ratio should approach min(N, jobs); on a
// single-core container it sits near 1. Determinism across worker counts
// is asserted by TestSweepDeterministicAcrossWorkers, not here.
func BenchmarkParallelSweepSpeedup(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	sweep := func(w int) {
		cfg := benchCfg(energy.E1)
		cfg.Workers = w
		if _, err := experiment.Figure2(cfg); err != nil {
			b.Fatal(err)
		}
	}
	var seq, par time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		sweep(1)
		seq += time.Since(start)
		start = time.Now()
		sweep(workers)
		par += time.Since(start)
	}
	b.StopTimer()
	if par > 0 {
		b.ReportMetric(seq.Seconds()/par.Seconds(), "speedup-x")
	}
	b.ReportMetric(float64(workers), "workers")
}

// BenchmarkEUADecision micro-benchmarks one full simulation dominated by
// scheduler decisions (the per-event cost of Algorithm 1 + 2).
func BenchmarkEUADecision(b *testing.B) {
	timeOneRun(b, func() euastar.Scheduler { return euastar.NewEUA() }, 0.9)
}

// BenchmarkEDFDecision is the baseline scheduler's cost on the identical
// workload.
func BenchmarkEDFDecision(b *testing.B) {
	timeOneRun(b, func() euastar.Scheduler { return euastar.NewEDF(true) }, 0.9)
}
