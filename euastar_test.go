package euastar_test

import (
	"testing"

	euastar "github.com/euastar/euastar"
)

func demoTasks() euastar.TaskSet {
	return euastar.TaskSet{
		{
			ID:      1,
			Name:    "sensor",
			Arrival: euastar.Periodic(50 * euastar.Millisecond),
			TUF:     euastar.StepTUF(10, 50*euastar.Millisecond),
			Demand:  euastar.Demand{Mean: 2e6, Variance: 0},
			Req:     euastar.Requirement{Nu: 1, Rho: 0.96},
		},
		{
			ID:      2,
			Name:    "tracker",
			Arrival: euastar.UAM(2, 80*euastar.Millisecond),
			TUF:     euastar.LinearTUF(40, 0, 80*euastar.Millisecond),
			Demand:  euastar.Demand{Mean: 3e6, Variance: 3e6},
			Req:     euastar.Requirement{Nu: 0.3, Rho: 0.9},
		},
	}
}

func TestSimulateDefaults(t *testing.T) {
	res, err := euastar.Simulate(euastar.SimConfig{
		Tasks:              demoTasks(),
		Scheduler:          euastar.NewEUA(),
		Horizon:            1,
		Seed:               1,
		AbortAtTermination: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) == 0 {
		t.Fatal("no jobs released")
	}
	rep := euastar.Analyze(res)
	if rep.Released != len(res.Jobs) {
		t.Fatalf("report released %d != %d", rep.Released, len(res.Jobs))
	}
	if !rep.AssuranceSatisfied() {
		t.Fatal("assurance violated on a light default workload")
	}
}

func TestUAMHelpers(t *testing.T) {
	s := euastar.UAM(3, 0.05)
	if s.A != 3 || s.P != 0.05 {
		t.Fatalf("spec = %+v", s)
	}
	p := euastar.Periodic(0.1)
	if !p.IsPeriodic() {
		t.Fatal("Periodic not periodic")
	}
}

func TestTUFConstructors(t *testing.T) {
	cases := []euastar.TUF{
		euastar.StepTUF(10, 1),
		euastar.LinearTUF(10, 2, 1),
		euastar.QuadraticTUF(10, 1),
		euastar.ExponentialTUF(10, 0.3, 1),
	}
	for _, f := range cases {
		if f.MaxUtility() != 10 {
			t.Fatalf("%v: Umax = %v", f, f.MaxUtility())
		}
		if f.Termination() != 1 {
			t.Fatalf("%v: X = %v", f, f.Termination())
		}
	}
}

func TestPiecewiseTUF(t *testing.T) {
	f, err := euastar.PiecewiseTUF([2]float64{0, 10}, [2]float64{5, 10}, [2]float64{10, 0})
	if err != nil {
		t.Fatal(err)
	}
	if u := f.Utility(5); u != 10 {
		t.Fatalf("U(5) = %v", u)
	}
	if _, err := euastar.PiecewiseTUF([2]float64{0, 10}); err == nil {
		t.Fatal("single knot accepted")
	}
}

func TestEnergyPreset(t *testing.T) {
	for _, name := range []string{"E1", "E2", "E3"} {
		m, err := euastar.EnergyPreset(name, 1000e6)
		if err != nil {
			t.Fatal(err)
		}
		if m.Name != name {
			t.Fatalf("name = %q", m.Name)
		}
	}
	if _, err := euastar.EnergyPreset("E7", 1000e6); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestSchedulerConstructors(t *testing.T) {
	names := map[string]euastar.Scheduler{
		"EUA*":       euastar.NewEUA(),
		"EUA*-noDVS": euastar.NewEUA(euastar.WithoutDVS()),
		"EDF-fm":     euastar.NewEDF(true),
		"EDF-fm-NA":  euastar.NewEDF(false),
		"ccEDF":      euastar.NewCCEDF(true),
		"laEDF":      euastar.NewLAEDF(true),
		"laEDF-NA":   euastar.NewLAEDF(false),
		"DASA":       euastar.NewDASA(),
	}
	for want, s := range names {
		if s.Name() != want {
			t.Errorf("scheduler name %q != %q", s.Name(), want)
		}
	}
}

func TestCompareOnIdenticalWorkload(t *testing.T) {
	cfg := euastar.SimConfig{
		Tasks:              demoTasks(),
		Horizon:            1,
		Seed:               7,
		AbortAtTermination: true,
	}
	reports, err := euastar.Compare(cfg, euastar.NewEDF(true), euastar.NewEUA())
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("%d reports", len(reports))
	}
	if reports[0].Released != reports[1].Released {
		t.Fatal("different workloads across schedulers")
	}
	n := euastar.Normalize(reports[1], reports[0])
	if n.Energy >= 1 {
		t.Fatalf("EUA* normalized energy = %v, expected savings", n.Energy)
	}
	// With linear TUFs EUA* legitimately trades utility above the ν bound
	// for energy (the dual-criterion objective), so the normalized utility
	// sits below EDF's but every statistical requirement must still hold.
	if n.Utility < 0.5 || n.Utility > 1.01 {
		t.Fatalf("underload normalized utility = %v", n.Utility)
	}
	if !reports[1].AssuranceSatisfied() {
		t.Fatal("EUA* violated {nu, rho} during underload")
	}
}

func TestCompareNoSchedulers(t *testing.T) {
	if _, err := euastar.Compare(euastar.SimConfig{}); err == nil {
		t.Fatal("no schedulers accepted")
	}
}

func TestSimulateInvalidConfig(t *testing.T) {
	if _, err := euastar.Simulate(euastar.SimConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestSchedulabilityAnalysis(t *testing.T) {
	light := euastar.TaskSet{{
		ID: 1, Arrival: euastar.Periodic(0.1),
		TUF:    euastar.StepTUF(10, 0.1),
		Demand: euastar.Demand{Mean: 10e6, Variance: 0},
		Req:    euastar.Requirement{Nu: 1, Rho: 0.9},
	}}
	if ok, _ := euastar.Schedulable(light, 1000e6); !ok {
		t.Fatal("light set rejected")
	}
	fmin, ok := euastar.MinimumFrequency(light, euastar.PowerNowK6())
	if !ok || fmin != 360e6 {
		t.Fatalf("minimum frequency = %v, %v", fmin, ok)
	}
	if got := euastar.TheoremOneFrequency(light); got != 1e8 {
		t.Fatalf("theorem 1 frequency = %v", got)
	}
	heavy := euastar.TaskSet{{
		ID: 1, Arrival: euastar.Periodic(0.1),
		TUF:    euastar.StepTUF(10, 0.1),
		Demand: euastar.Demand{Mean: 150e6, Variance: 0},
		Req:    euastar.Requirement{Nu: 1, Rho: 0.9},
	}}
	if ok, w := euastar.Schedulable(heavy, 1000e6); ok || w <= 0 {
		t.Fatalf("overloaded set accepted (witness %v)", w)
	}
}

func TestPowerNowK6(t *testing.T) {
	ft := euastar.PowerNowK6()
	if len(ft) != 7 || ft.Max() != 1000e6 {
		t.Fatalf("table = %v", ft)
	}
}
