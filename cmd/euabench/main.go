// Command euabench benchmarks the EUA* scheduler cores across a task
// count × arrival intensity matrix and reports nanoseconds, allocations
// and events-per-second per simulation event for the reference and
// fast-path implementations.
//
// Usage:
//
//	euabench -out BENCH_sched.json          # refresh the committed baseline
//	euabench -check BENCH_sched.json        # fail on >15% ns/event regression
//	euabench -quick                         # small matrix for smoke runs
//	euabench -overhead                      # gate the telemetry sink cost
//
// The regression check only gates cells present in both reports; see
// `make bench-check`. -overhead benchmarks each cell twice — no-op
// telemetry vs a live registry — and fails when the median cost exceeds
// -max-overhead percent (see `make telemetry-overhead`).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"github.com/euastar/euastar/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "euabench:", err)
		os.Exit(1)
	}
}

func run(args []string, out, diag io.Writer) error {
	fs := flag.NewFlagSet("euabench", flag.ContinueOnError)
	fs.SetOutput(diag)
	var (
		outPath   = fs.String("out", "", "write the benchmark report as JSON to this file")
		checkPath = fs.String("check", "", "compare against this baseline report and fail on regression")
		tolerance = fs.Float64("tolerance", 0.15, "allowed ns/event slowdown vs the -check baseline")
		reps      = fs.Int("reps", 5, "repetitions per cell (minimum is kept)")
		horizon   = fs.Float64("horizon", 0.4, "arrival horizon per run in seconds")
		seed      = fs.Uint64("seed", 1, "workload seed")
		quick     = fs.Bool("quick", false, "small matrix and short horizon for smoke runs")
		overhead  = fs.Bool("overhead", false, "measure the enabled-telemetry cost instead of the ref/fast matrix")
		maxOver   = fs.Float64("max-overhead", 5, "fail -overhead when the median cost exceeds this percent")
		coresFlag = fs.String("cores", "", "comma-separated core counts for the partitioned eua-part rows (default 1,2,4)")
		partFlag  = fs.String("partition", "", "placement policy for the eua-part rows: ff|wf (default ff)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tolerance < 0 {
		return fmt.Errorf("-tolerance must be >= 0, got %g", *tolerance)
	}
	coreCounts, err := parseCores(*coresFlag)
	if err != nil {
		return err
	}
	if *partFlag != "" && *partFlag != "ff" && *partFlag != "wf" {
		return fmt.Errorf("-partition must be ff or wf, got %q", *partFlag)
	}
	if *overhead {
		return runOverhead(out, *reps, *horizon, *seed, *quick, *maxOver)
	}

	opts := bench.Options{
		Reps:      *reps,
		Horizon:   *horizon,
		Seed:      *seed,
		Cores:     coreCounts,
		Partition: *partFlag,
		Progress:  diag,
	}
	if *quick {
		opts.Tasks = []int{8, 24}
		opts.Loads = []float64{1.0}
		if !flagSet(fs, "horizon") {
			opts.Horizon = 0.1
		}
		if !flagSet(fs, "reps") {
			opts.Reps = 1
		}
		if !flagSet(fs, "cores") {
			opts.Cores = []int{2}
		}
	}

	rep, err := bench.Sweep(opts)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "speedup (reference vs fast path):")
	bench.WriteSpeedups(out, rep)

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		err = bench.WriteJSON(f, rep)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "report written to %s\n", *outPath)
	}

	if *checkPath != "" {
		f, err := os.Open(*checkPath)
		if err != nil {
			return err
		}
		baseline, err := bench.ReadJSON(f)
		f.Close()
		if err != nil {
			return err
		}
		regs, drift := bench.Compare(rep, baseline, *tolerance)
		fmt.Fprintf(out, "suite drift vs baseline: x%.2f (normalized out; see internal/bench.Compare)\n", drift)
		if len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintln(out, "REGRESSION", r)
			}
			return fmt.Errorf("%d cell(s) regressed beyond %.0f%% vs %s", len(regs), *tolerance*100, *checkPath)
		}
		fmt.Fprintf(out, "no regression beyond %.0f%% vs %s\n", *tolerance*100, *checkPath)
	}
	return nil
}

// runOverhead gates the telemetry sink: each cell is benchmarked with the
// no-op sink and with a live registry, and the median percent cost across
// cells must stay under maxOver. The median (not the worst cell) is the
// gate because single cells on shared CI runners see multi-percent noise
// that minimum-of-reps cannot fully cancel.
func runOverhead(out io.Writer, reps int, horizon float64, seed uint64, quick bool, maxOver float64) error {
	tasks := []int{8, 24, 64}
	if quick {
		tasks = []int{8, 24}
		if horizon == 0.4 { // flag default; quick mode shrinks it
			horizon = 0.1
		}
	}
	var costs []float64
	for _, n := range tasks {
		c := bench.Cell{Tasks: n, Load: 1.0, Scheme: bench.SchemeFast, Seed: seed, Horizon: horizon}
		o, err := bench.MeasureOverhead(c, reps)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "overhead", o)
		costs = append(costs, o.Percent)
	}
	sort.Float64s(costs)
	median := costs[len(costs)/2]
	fmt.Fprintf(out, "median telemetry overhead: %+.1f%% (limit %.0f%%)\n", median, maxOver)
	if median > maxOver {
		return fmt.Errorf("telemetry overhead %.1f%% exceeds %.0f%%", median, maxOver)
	}
	return nil
}

// parseCores parses a comma-separated core-count list like "1,2,4".
func parseCores(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-cores wants positive integers like 1,2,4, got %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// flagSet reports whether the user passed the flag explicitly.
func flagSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}
