package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestNewScheduler(t *testing.T) {
	names := []string{"eua", "eua-nodvs", "edf", "edf-na", "ccedf", "laedf", "laedf-na", "dasa", "gus"}
	for _, n := range names {
		s, abort, err := newScheduler(n)
		if err != nil || s == nil {
			t.Fatalf("%s: %v", n, err)
		}
		if strings.HasSuffix(n, "-na") && abort {
			t.Fatalf("%s: NA variant aborts", n)
		}
	}
	if _, _, err := newScheduler("bogus"); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestRunDefaultScenario(t *testing.T) {
	for _, args := range [][]string{
		{"-horizon", "0.2"},
		{"-sched", "laedf-na", "-load", "1.4", "-horizon", "0.2"},
		{"-app", "A1", "-tuf", "linear", "-horizon", "0.2"},
		{"-app", "A3", "-energy", "E3", "-horizon", "0.2", "-gantt", "-width", "40"},
	} {
		if err := run(args, io.Discard); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
}

func TestRunCSVExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	if err := run([]string{"-horizon", "0.2", "-csv", path}, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "task,job,start,end") {
		t.Fatalf("csv header: %.60s", data)
	}
}

func TestRunTasksFile(t *testing.T) {
	doc := `{"tasks": [
	  {"id":1,"name":"x","a":1,"window_ms":100,
	   "tuf":{"shape":"step","umax":5},
	   "mean_cycles":1e6,"variance_cycles":0,"nu":1,"rho":0.9}]}`
	path := filepath.Join(t.TempDir(), "tasks.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-tasks", path, "-load", "0.5", "-horizon", "0.3"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-sched", "bogus"},
		{"-app", "A9"},
		{"-tuf", "cubic"},
		{"-energy", "E9"},
		{"-tasks", "/nonexistent/tasks.json"},
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Fatalf("%v accepted", args)
		}
	}
}

func TestShippedWorkloadFileLoads(t *testing.T) {
	if err := run([]string{"-tasks", "../../examples/quickstart/workload.json",
		"-load", "0.4", "-horizon", "0.2"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

// goldenArgs is the fixed invocation whose output is pinned by
// testdata/golden_output.txt. Keep in sync with the regeneration command
// in the golden file's sibling JSON comment.
var goldenArgs = []string{
	"-tasks", "testdata/golden_tasks.json",
	"-sched", "eua", "-seed", "7",
	"-load", "0.8", "-horizon", "0.4",
	"-gantt", "-width", "72",
}

// TestGoldenTrace is the scheduler-behaviour regression gate: a fixed
// workload, seed and horizon must reproduce the committed euatrace output
// byte for byte. Any refactor that silently changes a scheduling
// decision, a frequency choice, or the RNG stream shows up here as a
// diff. The -tasks path is echoed into the output, so regenerate from
// this directory (the test's working directory) to keep it stable:
//
//	cd cmd/euatrace && go run . -tasks testdata/golden_tasks.json \
//	    -sched eua -seed 7 -load 0.8 -horizon 0.4 -gantt -width 72 \
//	    > testdata/golden_output.txt
func TestGoldenTrace(t *testing.T) {
	want, err := os.ReadFile("testdata/golden_output.txt")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(goldenArgs, &out); err != nil {
		t.Fatal(err)
	}
	if got := out.Bytes(); !bytes.Equal(got, want) {
		t.Fatalf("euatrace output drifted from golden file (scheduler decisions changed?)\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}

// goldenDegradedArgs is the golden scenario plus a fault plan that
// injects exactly one execution-time overrun and one sticky frequency
// switch on this workload; pinned by testdata/golden_degraded.txt.
var goldenDegradedArgs = append(append([]string{}, goldenArgs...),
	"-faults", "seed=1,overrun=0.03,sticky=0.1")

// TestGoldenDegradedTrace is the graceful-degradation regression gate: a
// degraded-mode run (one sticky-switch fault + one overrun) must stay
// byte-stable, pinning both the fault injection points and how the
// scheduler reacts to them. Regenerate like the healthy golden:
//
//	cd cmd/euatrace && go run . -tasks testdata/golden_tasks.json \
//	    -sched eua -seed 7 -load 0.8 -horizon 0.4 -gantt -width 72 \
//	    -faults seed=1,overrun=0.03,sticky=0.1 > testdata/golden_degraded.txt
func TestGoldenDegradedTrace(t *testing.T) {
	want, err := os.ReadFile("testdata/golden_degraded.txt")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(goldenDegradedArgs, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "degraded      2 faults injected") {
		t.Fatalf("degraded run did not report its 2 injected faults:\n%s", out.String())
	}
	if got := out.Bytes(); !bytes.Equal(got, want) {
		t.Fatalf("degraded euatrace output drifted from golden file\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}

// TestFaultsFlagRejected pins -faults validation at the CLI boundary.
func TestFaultsFlagRejected(t *testing.T) {
	for _, spec := range []string{"overrun=2", "nonsense", "overrun=x", "sticky=-1"} {
		if err := run(append(append([]string{}, goldenArgs...), "-faults", spec), io.Discard); err == nil {
			t.Fatalf("-faults %q accepted", spec)
		}
	}
}

// TestGoldenTraceStable runs the golden scenario twice in one process:
// equal outputs prove the trace depends only on its inputs, not on
// leftover state from a previous run.
func TestGoldenTraceStable(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(goldenArgs, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(goldenArgs, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two identical euatrace runs produced different output")
	}
}
