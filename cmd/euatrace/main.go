// Command euatrace runs a single simulation scenario with trace recording
// and prints the schedule's anatomy: the metrics report, the frequency
// residency (how long the CPU spent at each DVS step), and optionally the
// full execution trace as CSV.
//
// Usage:
//
//	euatrace -sched eua -load 0.6 -horizon 1
//	euatrace -sched laedf-na -load 1.5 -csv trace.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/euastar/euastar/internal/config"
	"github.com/euastar/euastar/internal/cpu"
	"github.com/euastar/euastar/internal/energy"
	"github.com/euastar/euastar/internal/engine"
	"github.com/euastar/euastar/internal/faults"
	"github.com/euastar/euastar/internal/metrics"
	"github.com/euastar/euastar/internal/rng"
	"github.com/euastar/euastar/internal/sched"
	"github.com/euastar/euastar/internal/sched/ccedf"
	"github.com/euastar/euastar/internal/sched/dasa"
	"github.com/euastar/euastar/internal/sched/edf"
	"github.com/euastar/euastar/internal/sched/eua"
	"github.com/euastar/euastar/internal/sched/gus"
	"github.com/euastar/euastar/internal/sched/laedf"
	"github.com/euastar/euastar/internal/sched/partition"
	"github.com/euastar/euastar/internal/task"
	"github.com/euastar/euastar/internal/trace"
	"github.com/euastar/euastar/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "euatrace:", err)
		os.Exit(1)
	}
}

func newScheduler(name string) (sched.Scheduler, bool, error) {
	switch name {
	case "eua":
		return eua.New(), true, nil
	case "eua-nodvs":
		return eua.New(eua.WithoutDVS()), true, nil
	case "edf":
		return edf.New(true), true, nil
	case "edf-na":
		return edf.New(false), false, nil
	case "ccedf":
		return ccedf.New(true), true, nil
	case "laedf":
		return laedf.New(true), true, nil
	case "laedf-na":
		return laedf.New(false), false, nil
	case "dasa":
		return dasa.New(), true, nil
	case "gus":
		return gus.New(), true, nil
	default:
		return nil, false, fmt.Errorf("unknown scheduler %q (eua|eua-nodvs|edf|edf-na|ccedf|laedf|laedf-na|dasa|gus)", name)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("euatrace", flag.ContinueOnError)
	var (
		schedName = fs.String("sched", "eua", "scheduler: eua|eua-nodvs|edf|edf-na|ccedf|laedf|laedf-na|dasa|gus")
		preset    = fs.String("energy", "E1", "energy setting: E1|E2|E3")
		load      = fs.Float64("load", 0.6, "target system load")
		app       = fs.String("app", "A2", "Table 1 application: A1|A2|A3")
		shape     = fs.String("tuf", "step", "TUF family: step|linear")
		horizon   = fs.Float64("horizon", 1.0, "arrival horizon in seconds")
		tasksPath = fs.String("tasks", "", "load the task set from this JSON file instead of synthesizing -app")
		seed      = fs.Uint64("seed", 1, "random seed")
		csvPath   = fs.String("csv", "", "write the execution trace to this CSV file")
		gantt     = fs.Bool("gantt", false, "render an ASCII Gantt chart of the schedule")
		width     = fs.Int("width", 100, "Gantt chart width in columns")
		faultSpec = fs.String("faults", "", "deterministic fault plan, e.g. seed=7,overrun=0.1,sticky=0.05 (see README)")
		fastpath  = fs.Bool("fastpath", false, "run EUA*-family schedulers on the incremental fast-path core (bit-identical decisions, see DESIGN.md §8)")
		cores     = fs.Int("cores", 0, "number of DVS cores (0 or 1 = uniprocessor)")
		partFlag  = fs.String("partition", "ff", "multicore placement when -cores > 1: ff|wf|global")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cores < 0 {
		return fmt.Errorf("-cores must be non-negative, got %d", *cores)
	}
	plan, err := faults.Parse(*faultSpec)
	if err != nil {
		return err
	}

	scheduler, abort, err := newScheduler(*schedName)
	if err != nil {
		return err
	}
	if *fastpath {
		if s, ok := scheduler.(*eua.Scheduler); ok {
			s.EnableFastPath()
		} else {
			return fmt.Errorf("-fastpath applies only to EUA*-family schedulers, not %q", *schedName)
		}
	}
	if *cores > 1 {
		switch *partFlag {
		case "global":
			scheduler = partition.NewGlobal(*cores)
		case "ff", "wf":
			name, fp := *schedName, *fastpath
			policy, err := partition.ParsePolicy(*partFlag)
			if err != nil {
				return err
			}
			scheduler = partition.New(*cores, policy, func() sched.Scheduler {
				s, _, _ := newScheduler(name)
				if fp {
					if e, ok := s.(*eua.Scheduler); ok {
						e.EnableFastPath()
					}
				}
				return s
			})
		default:
			return fmt.Errorf("unknown partition policy %q (ff|wf|global)", *partFlag)
		}
	}
	var application workload.App
	switch *app {
	case "A1":
		application = workload.A1()
	case "A2":
		application = workload.A2()
	case "A3":
		application = workload.A3()
	default:
		return fmt.Errorf("unknown application %q", *app)
	}
	var tufShape workload.Shape
	switch *shape {
	case "step":
		tufShape = workload.Step
	case "linear":
		tufShape = workload.LinearDecay
	default:
		return fmt.Errorf("unknown TUF family %q", *shape)
	}

	ft := cpu.PowerNowK6()
	model, err := energy.NewPreset(energy.Preset(*preset), ft.Max())
	if err != nil {
		return err
	}
	var ts task.Set
	if *tasksPath != "" {
		f, err := os.Open(*tasksPath)
		if err != nil {
			return err
		}
		ts, err = config.Load(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		ts, err = application.Synthesize(rng.New(*seed*0x9e3779b9), workload.Options{Shape: tufShape})
		if err != nil {
			return err
		}
	}
	if *load > 0 {
		ts = ts.ScaleToLoad(*load, ft.Max())
	}

	res, err := engine.Run(engine.Config{
		Tasks:              ts,
		Scheduler:          scheduler,
		Freqs:              ft,
		Cores:              *cores,
		Energy:             model,
		Horizon:            *horizon,
		Seed:               *seed,
		AbortAtTermination: abort,
		RecordTrace:        true,
		Faults:             plan,
	})
	if err != nil {
		return err
	}
	if err := trace.Validate(res, ft); err != nil {
		return fmt.Errorf("schedule invariant violated: %w", err)
	}

	source := application.Name
	if *tasksPath != "" {
		source = *tasksPath
	}
	rep := metrics.Analyze(res)
	fmt.Fprintf(out, "scheduler     %s\n", rep.Scheduler)
	fmt.Fprintf(out, "workload      %s at load %.2f (%s)\n", source, ts.Load(ft.Max()), *preset)
	fmt.Fprintf(out, "jobs          %d released, %d completed, %d aborted\n", rep.Released, rep.Completed, rep.Aborted)
	fmt.Fprintf(out, "utility       %.1f of %.1f attainable (ratio %.3f)\n", rep.AccruedUtility, rep.MaxPossibleUtility, rep.UtilityRatio())
	fmt.Fprintf(out, "energy        %.4g (%.4g per executed cycle)\n", rep.TotalEnergy, rep.TotalEnergy/rep.Cycles)
	fmt.Fprintf(out, "busy          %.1f ms over %.1f ms, %d frequency switches, %d decisions\n",
		rep.BusyTime*1e3, rep.EndTime*1e3, rep.Switches, res.Decisions)
	if res.Cores > 1 {
		fmt.Fprintf(out, "cores         %d (%s), %d migrations\n", res.Cores, *partFlag, res.Migrations)
		for k, cr := range res.PerCore {
			fmt.Fprintf(out, "  core %d      energy %.4g  busy %.1f ms  %d switches\n",
				k, cr.Energy, cr.BusyTime*1e3, cr.Switches)
		}
	}
	fmt.Fprintf(out, "assurance     all {nu, rho} met: %v\n", rep.AssuranceSatisfied())
	if plan.Enabled() {
		fmt.Fprintf(out, "degraded      %d faults injected (%s), %d jobs shed, %.4g abort cycles\n",
			res.FaultEvents, plan, res.JobsShed, res.AbortCycles)
	}
	for _, pt := range rep.PerTask {
		so := pt.Sojourn()
		fmt.Fprintf(out, "  %-10s met %3d/%3d (rho=%.2f)  aborted %d  sojourn p50/p95 %.1f/%.1f ms\n",
			pt.Task.String(), pt.Met, pt.Released, pt.Task.Req.Rho, pt.Aborted,
			so.Median*1e3, so.P95*1e3)
	}

	fmt.Fprintln(out, "frequency residency:")
	resid := trace.FrequencyResidency(res.Trace)
	for _, f := range trace.Frequencies(resid) {
		fmt.Fprintf(out, "  %4.0f MHz  %7.2f ms  (%.1f%% of busy)\n",
			f/1e6, resid[f]*1e3, 100*resid[f]/res.BusyTime)
	}

	if *gantt {
		fmt.Fprintln(out, "schedule:")
		if err := trace.WriteGantt(out, res, ft, *width); err != nil {
			return err
		}
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteCSV(f, res.Trace); err != nil {
			return err
		}
		fmt.Fprintf(out, "trace: %d spans written to %s\n", len(res.Trace), *csvPath)
	}
	return nil
}
