package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"github.com/euastar/euastar/internal/client"
	"github.com/euastar/euastar/internal/server"
)

// TestChaosStorageFaults is the degraded-storage acceptance test: a
// daemon running under a seeded storage fault plan (ENOSPC, torn
// writes, fsync errors) acknowledges some submissions and refuses
// others with 503 code=storage, then is SIGKILLed and restarted on the
// same data directory with the faults gone. Across 20 seeded cycles:
//
//   - zero acked-job loss: every submission answered 202 is present and
//     reaches a terminal state after the restart (the fsynced
//     submission record survived both the faults and the kill), and
//   - zero false acks: every submission refused 503 is absent after the
//     restart — a refusal never leaves a durable ghost behind.
func TestChaosStorageFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test is multi-second; skipped in -short")
	}
	ctx := context.Background()
	const cycles = 20
	const jobsPerCycle = 15
	var acked, refused int

	for cycle := 0; cycle < cycles; cycle++ {
		dataDir := t.TempDir()
		// after=8 lets the process start (journal header) before the disk
		// begins to misbehave; the probabilities leave a seed-dependent
		// mix of accepted and refused submissions.
		plan := fmt.Sprintf("seed=%d,after=8,write-err=0.15,short-write=0.15,sync-err=0.1", cycle+1)
		victim := startDaemon(t, dataDir, "-storage-faults", plan)

		ackedIDs, refusedIDs := []string{}, []string{}
		for i := 0; i < jobsPerCycle; i++ {
			id := fmt.Sprintf("c%d-j%d", cycle, i)
			// Durable jobs only: a 202 for a simulate job is a durability
			// promise (the fsynced submission record), whereas an analyze
			// job acked in degraded mode is intentionally memory-only and
			// would rightly vanish across a restart.
			spec := fmt.Sprintf(`{"id":%q,"kind":"simulate","scheme":"EUA*","load":0.5,"horizon":0.1,"tasks":%s}`, id, tasksDoc)
			// Raw HTTP, no retries: each submission gets exactly one
			// verdict, so the ack bookkeeping is unambiguous.
			resp, err := http.Post(victim.base+"/v1/jobs", "application/json", bytes.NewReader([]byte(spec)))
			if err != nil {
				t.Fatalf("cycle %d submit %s: %v; logs:\n%s", cycle, id, err, victim.logs)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusAccepted:
				ackedIDs = append(ackedIDs, id)
			case http.StatusServiceUnavailable:
				refusedIDs = append(refusedIDs, id)
			default:
				t.Fatalf("cycle %d submit %s: unexpected %d %s; logs:\n%s", cycle, id, resp.StatusCode, body, victim.logs)
			}
		}

		// SIGKILL: no cleanup, no drain — whatever the fsynced journal
		// says is all the next process gets.
		if err := victim.cmd.Process.Kill(); err != nil {
			t.Fatal(err)
		}
		victim.cmd.Wait()

		// Restart without fault injection (the disk "recovered").
		revived := startDaemon(t, dataDir)
		for _, id := range ackedIDs {
			st, err := client.New(revived.base).Wait(ctx, id)
			if err != nil {
				t.Fatalf("cycle %d: acked job %s lost after restart: %v; logs:\n%s", cycle, id, err, revived.logs)
			}
			if !st.Terminal() {
				t.Fatalf("cycle %d: acked job %s not terminal: %+v", cycle, id, st)
			}
		}
		for _, id := range refusedIDs {
			resp, err := http.Get(revived.base + "/v1/jobs/" + id)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusNotFound {
				t.Fatalf("cycle %d: refused job %s resurfaced as %d after restart (false ack); logs:\n%s",
					cycle, id, resp.StatusCode, revived.logs)
			}
		}
		revived.cmd.Process.Kill()
		revived.cmd.Wait()
		acked += len(ackedIDs)
		refused += len(refusedIDs)
	}
	t.Logf("%d cycles: %d acked (all present and terminal), %d refused (none resurfaced)", cycles, acked, refused)
	if acked == 0 || refused == 0 {
		t.Fatalf("degenerate chaos mix (acked %d, refused %d): the fault plan exercised only one path", acked, refused)
	}
}

// tasksDoc is a small valid task-set document for analyze submissions.
const tasksDoc = `{
 "tasks": [
  {"id": 1, "name": "A", "a": 1, "window_ms": 50,
   "tuf": {"shape": "step", "umax": 10},
   "mean_cycles": 2e6, "variance_cycles": 1e11, "nu": 1, "rho": 0.9},
  {"id": 2, "name": "B", "a": 2, "window_ms": 120,
   "tuf": {"shape": "linear", "umax": 40, "uend": 0},
   "mean_cycles": 5e6, "variance_cycles": 4e11, "nu": 0.3, "rho": 0.9}
 ]
}`

// TestChaosStorageDegradedFlag smoke-checks the -disk-low-watermark
// wiring end to end: a daemon started with the watermark at 1.0 (every
// real disk is below it) must refuse durable work with 503 code=storage
// while still serving analyze, and report itself degraded.
func TestChaosStorageDegradedFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test is multi-second; skipped in -short")
	}
	d := startDaemon(t, t.TempDir(), "-disk-low-watermark", "1.0")
	defer func() {
		d.cmd.Process.Kill()
		d.cmd.Wait()
	}()

	spec := fmt.Sprintf(`{"id":"deg-1","kind":"simulate","scheme":"EUA*","load":0.5,"horizon":0.1,"tasks":%s}`, tasksDoc)
	resp, err := http.Post(d.base+"/v1/jobs", "application/json", bytes.NewReader([]byte(spec)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("durable submit on degraded daemon: %d; logs:\n%s", resp.StatusCode, d.logs)
	}

	an := fmt.Sprintf(`{"id":"deg-an","kind":"analyze","tasks":%s}`, tasksDoc)
	resp, err = http.Post(d.base+"/v1/jobs", "application/json", bytes.NewReader([]byte(an)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("analyze on degraded daemon: %d; logs:\n%s", resp.StatusCode, d.logs)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := client.New(d.base).Wait(ctx, "deg-an")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateDone {
		t.Fatalf("degraded analyze: %+v", st)
	}
}
