package main

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/euastar/euastar/internal/client"
	"github.com/euastar/euastar/internal/server"
)

// TestTelemetrySmoke drives a real euad process end to end: run a sweep
// job, then scrape /metrics (Prometheus text format, job + engine +
// scheduler families) and pull a short CPU profile from /debug/pprof.
// `make telemetry-smoke` runs exactly this test.
func TestTelemetrySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a daemon and takes seconds; skipped in -short")
	}
	d := startDaemon(t, t.TempDir())
	defer func() {
		if d.cmd.ProcessState == nil {
			d.stop(t)
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	spec := server.JobSpec{
		ID:         "telemetry-smoke",
		Kind:       server.KindSweep,
		Experiment: "fig2",
		Seeds:      1,
		Horizon:    0.3,
		Loads:      []float64{0.5},
	}
	st, err := client.New(d.base).Run(ctx, spec)
	if err != nil {
		t.Fatalf("sweep job: %v; logs:\n%s", err, d.logs)
	}
	if st.State != server.StateDone {
		t.Fatalf("job state %s, error %v", st.State, st.Error)
	}
	if st.Timings == nil || st.Timings.RunSeconds <= 0 {
		t.Fatalf("done job reports no run timing: %+v", st.Timings)
	}

	httpGet := func(url string) (string, string) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	metrics, ct := httpGet(d.base + "/metrics")
	if ct != "text/plain; version=0.0.4" {
		t.Fatalf("/metrics content type %q", ct)
	}
	for _, want := range []string{
		"euad_jobs_admitted_total 1",
		`euad_jobs_finished_total{outcome="done"} 1`,
		`euad_job_phase_seconds_count{phase="run"} 1`,
		"euastar_engine_events_total",
		"euastar_sched_decide_seconds_count",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Fatalf("metrics body:\n%s", metrics)
	}

	profile, _ := httpGet(d.base + "/debug/pprof/profile?seconds=1")
	if len(profile) == 0 {
		t.Fatal("empty CPU profile")
	}
}
