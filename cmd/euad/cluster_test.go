package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"syscall"
	"testing"
	"time"

	"github.com/euastar/euastar/internal/client"
	"github.com/euastar/euastar/internal/server"
)

// clusterSweepSpec is the chaos workload: a faults-enabled fig2 sweep
// long enough (~seconds) that killing workers reliably lands mid-sweep.
func clusterSweepSpec(id string) server.JobSpec {
	return server.JobSpec{
		ID:         id,
		Kind:       server.KindSweep,
		Experiment: "fig2",
		Seeds:      3,
		Horizon:    5,
		Faults:     "seed=7,overrun=0.1,sticky=0.05",
	}
}

// scrapeMetric reads one un-labeled series from a daemon's /metrics.
func scrapeMetric(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("scrape %s: %v", base, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` ([0-9.e+-]+)$`)
	m := re.FindSubmatch(data)
	if m == nil {
		return 0
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return v
}

// waitMetric polls a metric until it reaches at least want.
func waitMetric(t *testing.T, base, name string, want float64, deadline time.Duration) {
	t.Helper()
	stop := time.Now().Add(deadline)
	for {
		if v := scrapeMetric(t, base, name); v >= want {
			return
		}
		if time.Now().After(stop) {
			t.Fatalf("%s never reached %v (last %v)", name, want, scrapeMetric(t, base, name))
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestClusterChaosSoak is the distribution acceptance test: a 4-process
// local cluster (coordinator + 3 workers) runs a faults-enabled sweep
// while one worker is SIGKILLed and another hard-stalled (SIGSTOP)
// mid-sweep. The merged result must be byte-identical to a single-node
// golden run, the resumed zombie's late commit must fence as stale, and
// the coordinator's accounting must balance: every granted lease
// resolves exactly once (granted = completed + expired + stolen).
func TestClusterChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster soak is multi-second; skipped in -short")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	// Golden: the same sweep on a plain single daemon.
	golden := startDaemon(t, t.TempDir())
	start := time.Now()
	refSt, err := client.New(golden.base).Run(ctx, clusterSweepSpec("cluster-sweep"))
	if err != nil {
		t.Fatalf("golden run: %v; logs:\n%s", err, golden.logs)
	}
	refDur := time.Since(start)
	if refSt.State != server.StateDone {
		t.Fatalf("golden job: %+v", refSt)
	}
	if code := golden.stop(t); code != 0 {
		t.Fatalf("golden daemon exit code %d", code)
	}

	// The cluster: short leases so revocation and reassignment are
	// exercised within the test budget.
	coord := startDaemon(t, t.TempDir(), "-coordinator", "-lease-ttl", "2s")
	defer coord.cmd.Process.Kill()
	var workers [3]*daemon
	for i := range workers {
		workers[i] = startDaemon(t, t.TempDir(),
			"-join", coord.base, "-worker-id", fmt.Sprintf("w%d", i+1), "-cells", "1")
		defer workers[i].cmd.Process.Kill()
	}
	waitMetric(t, coord.base, "euad_coord_workers_live", 3, 15*time.Second)

	if _, err := client.New(coord.base).Submit(ctx, clusterSweepSpec("cluster-sweep")); err != nil {
		t.Fatalf("cluster submit: %v; logs:\n%s", err, coord.logs)
	}
	// Let the sweep get airborne, then take two of the three workers out:
	// one vanishes without a trace, one freezes while holding leases.
	time.Sleep(refDur / 8)
	if err := workers[0].cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup
		t.Fatal(err)
	}
	workers[0].cmd.Wait()
	if err := syscall.Kill(workers[1].cmd.Process.Pid, syscall.SIGSTOP); err != nil {
		t.Fatal(err)
	}

	st, err := client.New(coord.base).Wait(ctx, "cluster-sweep")
	if err != nil {
		t.Fatalf("cluster wait: %v; logs:\n%s", err, coord.logs)
	}
	if st.State != server.StateDone {
		t.Fatalf("cluster job: %+v; logs:\n%s", st, coord.logs)
	}
	if !bytes.Equal(st.Result, refSt.Result) {
		t.Fatalf("cluster result differs from single-node golden:\ngolden: %.300s\ncluster: %.300s", refSt.Result, st.Result)
	}

	// Wake the frozen worker: a zombie resuming after a partition. Its
	// leases expired long ago; whatever it tries to commit must fence as
	// a stale epoch, never land in a sweep.
	if err := syscall.Kill(workers[1].cmd.Process.Pid, syscall.SIGCONT); err != nil {
		t.Fatal(err)
	}
	staleDeadline := time.Now().Add(20 * time.Second)
	for scrapeMetric(t, coord.base, "euad_coord_commits_stale_total") < 1 {
		if time.Now().After(staleDeadline) {
			t.Fatalf("zombie worker's late commit never arrived (or was not fenced); logs:\n%s", coord.logs)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Accounting at quiescence: every lease resolved exactly once, and
	// the sweep really did travel through the cluster.
	granted := scrapeMetric(t, coord.base, "euad_coord_leases_granted_total")
	completed := scrapeMetric(t, coord.base, "euad_coord_leases_completed_total")
	expired := scrapeMetric(t, coord.base, "euad_coord_leases_expired_total")
	stolen := scrapeMetric(t, coord.base, "euad_coord_leases_stolen_total")
	if granted != completed+expired+stolen {
		t.Fatalf("lease accounting broken: granted=%v completed=%v expired=%v stolen=%v\nlogs:\n%s",
			granted, completed, expired, stolen, coord.logs)
	}
	if granted < 27 { // 9 loads × 3 seeds: every cell was granted at least once
		t.Fatalf("only %v leases granted for a 27-cell sweep", granted)
	}
	if expired+stolen < 1 {
		t.Fatalf("chaos produced no revocations (expired=%v stolen=%v): the faults did not land mid-sweep", expired, stolen)
	}

	// The survivors shut down clean.
	if code := workers[2].stop(t); code != 0 {
		t.Fatalf("surviving worker exit code %d; logs:\n%s", code, workers[2].logs)
	}
	if code := coord.stop(t); code != 0 {
		t.Fatalf("coordinator exit code %d; logs:\n%s", code, coord.logs)
	}
}
