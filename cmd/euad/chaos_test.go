package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/euastar/euastar/internal/client"
	"github.com/euastar/euastar/internal/jobstore"
	"github.com/euastar/euastar/internal/server"
)

var (
	buildOnce sync.Once
	euadBin   string
	buildErr  error
)

// binary builds the euad executable once per test process.
func binary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "euad-bin-")
		if err != nil {
			buildErr = err
			return
		}
		euadBin = filepath.Join(dir, "euad")
		out, err := exec.Command("go", "build", "-o", euadBin, ".").CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return euadBin
}

// daemon is one running euad process under test control.
type daemon struct {
	cmd  *exec.Cmd
	base string // http://host:port
	logs *bytes.Buffer
}

// startDaemon launches euad on a kernel-assigned port and waits for the
// "listening on" line to learn the address.
func startDaemon(t *testing.T, dataDir string, extra ...string) *daemon {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-data", dataDir}, extra...)
	cmd := exec.Command(binary(t), args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, logs: &bytes.Buffer{}}
	addrC := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			d.logs.WriteString(line + "\n")
			if _, base, ok := strings.Cut(line, "listening on "); ok {
				select {
				case addrC <- base:
				default:
				}
			}
		}
	}()
	select {
	case d.base = <-addrC:
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("euad did not report a listen address; logs:\n%s", d.logs)
	}
	return d
}

// stop SIGTERMs the daemon and returns its exit code.
func (d *daemon) stop(t *testing.T) int {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	return d.wait(t)
}

func (d *daemon) wait(t *testing.T) int {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case <-done:
		return d.cmd.ProcessState.ExitCode()
	case <-time.After(60 * time.Second):
		d.cmd.Process.Kill()
		t.Fatalf("euad did not exit; logs:\n%s", d.logs)
		return -1
	}
}

// sweepSpec is the chaos workload: a fig2 sweep long enough (~2s) that a
// SIGKILL reliably lands mid-flight.
func sweepSpec(id string) server.JobSpec {
	return server.JobSpec{
		ID:         id,
		Kind:       server.KindSweep,
		Experiment: "fig2",
		Seeds:      3,
		Horizon:    2.5,
	}
}

// TestChaosKillResume is the crash-safety acceptance test: kill -9 a
// daemon mid-sweep, restart it on the same data directory, and require
// the recovered job's result to be bit-identical to an uninterrupted
// run on a separate daemon.
func TestChaosKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test is multi-second; skipped in -short")
	}
	ctx := context.Background()

	// Reference: uninterrupted run.
	refDir := t.TempDir()
	ref := startDaemon(t, refDir)
	refClient := client.New(ref.base)
	start := time.Now()
	refSt, err := refClient.Run(ctx, sweepSpec("chaos-sweep"))
	if err != nil {
		t.Fatalf("reference run: %v; logs:\n%s", err, ref.logs)
	}
	refDur := time.Since(start)
	if refSt.State != server.StateDone {
		t.Fatalf("reference job: %+v; logs:\n%s", refSt, ref.logs)
	}
	if code := ref.stop(t); code != 0 {
		t.Fatalf("reference daemon exit code %d; logs:\n%s", code, ref.logs)
	}

	// Chaos: same spec, SIGKILL partway through the sweep.
	chaosDir := t.TempDir()
	victim := startDaemon(t, chaosDir)
	if _, err := client.New(victim.base).Submit(ctx, sweepSpec("chaos-sweep")); err != nil {
		t.Fatalf("chaos submit: %v; logs:\n%s", err, victim.logs)
	}
	time.Sleep(refDur * 2 / 5)
	if err := victim.cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup runs
		t.Fatal(err)
	}
	victim.cmd.Wait()

	// Restart on the same data directory: the journaled submission is
	// re-enqueued and the sweep resumes from its checkpoint.
	revived := startDaemon(t, chaosDir)
	st, err := client.New(revived.base).Wait(ctx, "chaos-sweep")
	if err != nil {
		t.Fatalf("recovered wait: %v; logs:\n%s", err, revived.logs)
	}
	if st.State != server.StateDone {
		t.Fatalf("recovered job: %+v; logs:\n%s", st, revived.logs)
	}
	if !bytes.Equal(st.Result, refSt.Result) {
		t.Fatalf("recovered result differs from uninterrupted run:\nref:  %.200s\ngot:  %.200s", refSt.Result, st.Result)
	}
	if code := revived.stop(t); code != 0 {
		t.Fatalf("revived daemon exit code %d; logs:\n%s", code, revived.logs)
	}

	// A further restart replays the terminal record without recomputing.
	again := startDaemon(t, chaosDir)
	st, err = client.New(again.base).Get(ctx, "chaos-sweep")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateDone || !bytes.Equal(st.Result, refSt.Result) {
		t.Fatalf("replayed result differs: %+v", st)
	}
	if code := again.stop(t); code != 0 {
		t.Fatalf("exit code %d", code)
	}
}

// TestChaosDrainSIGTERM checks graceful shutdown: SIGTERM while a sweep
// is in flight must let the job finish, journal it terminal, and exit 0.
func TestChaosDrainSIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test is multi-second; skipped in -short")
	}
	ctx := context.Background()
	dataDir := t.TempDir()
	d := startDaemon(t, dataDir)
	if _, err := client.New(d.base).Submit(ctx, sweepSpec("drain-sweep")); err != nil {
		t.Fatalf("submit: %v; logs:\n%s", err, d.logs)
	}
	time.Sleep(300 * time.Millisecond) // let a worker pick the job up
	if code := d.stop(t); code != 0 {
		t.Fatalf("drain exit code %d; logs:\n%s", code, d.logs)
	}

	// The drained daemon must have finished the job, not abandoned it.
	rec, err := jobstore.ReadAll(filepath.Join(dataDir, "journal.wal"))
	if err != nil {
		t.Fatal(err)
	}
	states := jobstore.Rebuild(rec.Records)
	st, ok := states["drain-sweep"]
	if !ok || st.Kind != jobstore.KindDone {
		t.Fatalf("journal does not record drain-sweep as done: %+v\nlogs:\n%s", states, d.logs)
	}
	var res server.SweepResult
	if err := json.Unmarshal(st.Result, &res); err != nil {
		t.Fatalf("journaled result unreadable: %v", err)
	}
	if len(res.Rows) == 0 || res.Text == "" {
		t.Fatalf("journaled result empty: %.200s", st.Result)
	}
}
