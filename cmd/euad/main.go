// Command euad is the EUA* scheduling daemon: a long-running HTTP/JSON
// service that accepts schedulability analyses, single simulations and
// experiment sweeps, runs them on a bounded worker pool, and journals
// every job so a crash mid-sweep resumes on restart (see DESIGN.md §9).
//
// Usage:
//
//	euad -addr 127.0.0.1:9176 -data /var/lib/euad
//
// SIGTERM or SIGINT triggers a graceful drain: admission stops (503),
// in-flight jobs finish, and the process exits 0. If the drain budget
// expires first, running jobs are stopped cooperatively and will resume
// from their checkpoints on the next start.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/euastar/euastar/internal/client"
	"github.com/euastar/euastar/internal/coordinator"
	"github.com/euastar/euastar/internal/server"
	"github.com/euastar/euastar/internal/storage"
	"github.com/euastar/euastar/internal/tenancy"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("euad", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9176", "listen address (host:port; port 0 picks a free port)")
	data := fs.String("data", "euad-data", "data directory for the job journal and sweep checkpoints (empty disables durability)")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	simWorkers := fs.Int("sim-workers", 1, "simulation workers per sweep job")
	queue := fs.Int("queue", 64, "per-tenant admission queue depth; beyond it submissions get 429")
	tenantWeights := fs.String("tenant-weights", "", "WDRR dequeue weights per tenant, e.g. team-a=1,team-b=4 (unlisted tenants weigh 1)")
	tenantRate := fs.Float64("tenant-rate", 0, "per-tenant submission quota in jobs/second (0 disables the quota)")
	tenantBurst := fs.Int("tenant-burst", 1, "per-tenant submission quota burst (token bucket capacity)")
	tenantInflight := fs.Int("tenant-inflight", 0, "per-tenant cap on queued+running jobs (0 = unlimited)")
	maxTenants := fs.Int("max-tenants", 64, "distinct tenants tracked before further tenants are refused")
	diskLow := fs.Float64("disk-low-watermark", 0, "free-space fraction of the data dir below which the daemon degrades: analyze only, durable work refused with 503 (0 disables)")
	storageFaults := fs.String("storage-faults", "", "deterministic storage fault plan for chaos testing, e.g. seed=7,after=8,write-err=0.1,sync-err=0.05")
	breakerThreshold := fs.Int("breaker-threshold", 5, "worker-mode circuit breaker: consecutive dead-peer failures before it opens")
	breakerCooldown := fs.Duration("breaker-cooldown", 2*time.Second, "worker-mode circuit breaker: cooldown before a half-open probe")
	cores := fs.Int("cores", 0, "default DVS core count for sweep/simulate jobs that do not set cores (0 = uniprocessor)")
	partition := fs.String("partition", "", "default placement policy for multicore jobs: ff|wf|global (empty = ff)")
	defTimeout := fs.Duration("timeout", 2*time.Minute, "default per-job wall-clock budget")
	maxTimeout := fs.Duration("max-timeout", 10*time.Minute, "ceiling on any job's wall-clock budget")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for in-flight jobs")
	coordMode := fs.Bool("coordinator", false, "serve as a sweep coordinator: shard sweep jobs across joined worker daemons")
	leaseTTL := fs.Duration("lease-ttl", 10*time.Second, "coordinator cell lease TTL (heartbeats renew; silence past it reassigns the cell)")
	heartbeat := fs.Duration("heartbeat", 0, "coordinator heartbeat interval for workers (0 = lease-ttl/4)")
	join := fs.String("join", "", "coordinator URL to join as a worker (e.g. http://127.0.0.1:9176)")
	workerID := fs.String("worker-id", "", "stable worker identity when joining (default host-pid)")
	cells := fs.Int("cells", 0, "concurrent sweep cells when joining as a worker (0 = GOMAXPROCS)")
	fs.Parse(args)

	logf := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", a...)
	}
	weights, err := tenancy.ParseWeights(*tenantWeights)
	if err != nil {
		logf("euad: %v", err)
		return 1
	}
	if *cores < 0 {
		logf("euad: -cores must be non-negative, got %d", *cores)
		return 1
	}
	switch *partition {
	case "", "ff", "wf", "global":
	default:
		logf("euad: -partition must be ff, wf or global, got %q", *partition)
		return 1
	}
	plan, err := storage.ParseFaultPlan(*storageFaults)
	if err != nil {
		logf("euad: %v", err)
		return 1
	}
	scfg := server.Config{
		DataDir:           *data,
		Workers:           *workers,
		SimWorkers:        *simWorkers,
		QueueDepth:        *queue,
		TenantWeights:     weights,
		TenantRate:        *tenantRate,
		TenantBurst:       *tenantBurst,
		TenantMaxInFlight: *tenantInflight,
		MaxTenants:        *maxTenants,
		DiskLowWatermark:  *diskLow,
		DefaultTimeout:    *defTimeout,
		MaxTimeout:        *maxTimeout,
		DefaultCores:      *cores,
		DefaultPartition:  *partition,
		Logf:              logf,
	}
	if plan != nil {
		logf("euad: storage fault injection active: %s", plan)
		scfg.FS = storage.NewFaultFS(storage.OS(), plan)
	}
	if *coordMode {
		scfg.Cluster = &coordinator.Config{LeaseTTL: *leaseTTL, Heartbeat: *heartbeat}
	}
	srv, err := server.New(scfg)
	if err != nil {
		logf("euad: %v", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logf("euad: %v", err)
		return 1
	}
	// The resolved address (port 0 → kernel-assigned) goes to stderr so
	// wrappers and tests can discover where to connect.
	logf("euad: listening on http://%s", ln.Addr())

	httpSrv := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	// Joining a cluster runs the worker lease loop alongside the local
	// service: this daemon keeps serving its own API while computing
	// sweep cells for the coordinator.
	workerCtx, stopWorker := context.WithCancel(context.Background())
	workerDone := make(chan struct{})
	close(workerDone)
	if *join != "" {
		id := *workerID
		if id == "" {
			host, _ := os.Hostname()
			id = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
		cl := client.New(*join)
		cl.Breaker = client.NewBreaker(*breakerThreshold, *breakerCooldown)
		cl.Breaker.OnChange(func(from, to string) {
			logf("euad: worker: coordinator circuit breaker %s -> %s", from, to)
		})
		w := &client.Worker{Client: cl, ID: id, Slots: *cells, Logf: logf}
		workerDone = make(chan struct{})
		go func() {
			defer close(workerDone)
			if err := w.Run(workerCtx); err != nil && workerCtx.Err() == nil {
				logf("euad: worker: %v", err)
			}
		}()
	}
	defer stopWorker()

	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, syscall.SIGTERM, syscall.SIGINT)

	select {
	case sig := <-sigC:
		stopWorker()
		<-workerDone
		logf("euad: %v: draining (budget %s)", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			logf("euad: drain: %v", err)
		}
		// Jobs are settled and journaled; now stop serving. Long-polls
		// already woke up when their jobs finished, so this is quick.
		shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer shutCancel()
		httpSrv.Shutdown(shutCtx)
		logf("euad: drained, exiting")
		return 0
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			logf("euad: serve: %v", err)
			return 1
		}
		return 0
	}
}
