// Command euad is the EUA* scheduling daemon: a long-running HTTP/JSON
// service that accepts schedulability analyses, single simulations and
// experiment sweeps, runs them on a bounded worker pool, and journals
// every job so a crash mid-sweep resumes on restart (see DESIGN.md §9).
//
// Usage:
//
//	euad -addr 127.0.0.1:9176 -data /var/lib/euad
//
// SIGTERM or SIGINT triggers a graceful drain: admission stops (503),
// in-flight jobs finish, and the process exits 0. If the drain budget
// expires first, running jobs are stopped cooperatively and will resume
// from their checkpoints on the next start.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/euastar/euastar/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("euad", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9176", "listen address (host:port; port 0 picks a free port)")
	data := fs.String("data", "euad-data", "data directory for the job journal and sweep checkpoints (empty disables durability)")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	simWorkers := fs.Int("sim-workers", 1, "simulation workers per sweep job")
	queue := fs.Int("queue", 64, "admission queue depth; beyond it submissions get 429")
	defTimeout := fs.Duration("timeout", 2*time.Minute, "default per-job wall-clock budget")
	maxTimeout := fs.Duration("max-timeout", 10*time.Minute, "ceiling on any job's wall-clock budget")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for in-flight jobs")
	fs.Parse(args)

	logf := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", a...)
	}
	srv, err := server.New(server.Config{
		DataDir:        *data,
		Workers:        *workers,
		SimWorkers:     *simWorkers,
		QueueDepth:     *queue,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		Logf:           logf,
	})
	if err != nil {
		logf("euad: %v", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logf("euad: %v", err)
		return 1
	}
	// The resolved address (port 0 → kernel-assigned) goes to stderr so
	// wrappers and tests can discover where to connect.
	logf("euad: listening on http://%s", ln.Addr())

	httpSrv := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, syscall.SIGTERM, syscall.SIGINT)

	select {
	case sig := <-sigC:
		logf("euad: %v: draining (budget %s)", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			logf("euad: drain: %v", err)
		}
		// Jobs are settled and journaled; now stop serving. Long-polls
		// already woke up when their jobs finished, so this is quick.
		shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer shutCancel()
		httpSrv.Shutdown(shutCtx)
		logf("euad: drained, exiting")
		return 0
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			logf("euad: serve: %v", err)
			return 1
		}
		return 0
	}
}
