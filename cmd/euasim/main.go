// Command euasim regenerates the paper's evaluation artifacts: Table 1
// (task settings), Table 2 (energy settings), Figure 2 (normalized utility
// and energy vs load, per energy setting), Figure 3 (energy vs load per
// UAM bound), the Section 4 assurance verification, and the EUA* ablation
// study.
//
// Usage:
//
//	euasim -exp all
//	euasim -exp fig2 -energy E3 -seeds 5 -horizon 2
//	euasim -exp fig3 -loads 0.2,0.5,0.9,1.4
//	euasim -exp fig2 -workers 8
//
// Simulations fan out across -workers goroutines (default: all cores).
// Stdout is bit-identical for every worker count; wall-clock and progress
// reporting go to stderr.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/euastar/euastar/internal/energy"
	"github.com/euastar/euastar/internal/experiment"
)

func main() {
	// Exit codes: 0 on success (including -h/-help), 1 on any error.
	// Progress/timing goes to stderr so stdout stays a clean, seed- and
	// worker-count-deterministic artifact suitable for diffing.
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "euasim:", err)
		os.Exit(1)
	}
}

func run(args []string, out, diag io.Writer) error {
	fs := flag.NewFlagSet("euasim", flag.ContinueOnError)
	fs.SetOutput(diag)
	var (
		exp      = fs.String("exp", "all", "experiment: table1|table2|fig2|fig3|assurance|ablation|budget|latency|ladder|contention|all")
		chart    = fs.Bool("chart", false, "additionally render fig2/fig3 as ASCII charts")
		preset   = fs.String("energy", "E1", "energy setting for fig2/ablation: E1|E2|E3")
		loads    = fs.String("loads", "", "comma-separated load sweep (default 0.2..1.8)")
		seeds    = fs.Int("seeds", 3, "number of replications (seeds 1..n)")
		horizon  = fs.Float64("horizon", 1.0, "arrival horizon per run in seconds")
		workers  = fs.Int("workers", runtime.GOMAXPROCS(0), "simulations run concurrently (results are identical for any value; counts above the number of jobs are clamped)")
		jsonPath = fs.String("json", "", "additionally write results as JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers <= 0 {
		return fmt.Errorf("-workers must be >= 1, got %d", *workers)
	}
	if *seeds <= 0 {
		return fmt.Errorf("-seeds must be >= 1, got %d", *seeds)
	}

	cfg := experiment.Config{
		Energy:  energy.Preset(*preset),
		Horizon: *horizon,
		Workers: *workers,
	}
	if *loads != "" {
		parsed, err := parseLoads(*loads)
		if err != nil {
			return err
		}
		cfg.Loads = parsed
	}
	for i := 1; i <= *seeds; i++ {
		cfg.Seeds = append(cfg.Seeds, uint64(i))
	}

	var docs []experiment.JSONDocument
	todo := strings.Split(*exp, ",")
	if *exp == "all" {
		todo = []string{"table1", "table2", "fig2", "fig3", "assurance", "ablation", "budget", "latency", "ladder", "contention"}
	}
	total := time.Now()
	for _, e := range todo {
		start := time.Now()
		fmt.Fprintf(out, "== %s (%s) ==\n", e, experiment.Describe(cfg))
		switch e {
		case "table1":
			if err := experiment.WriteTable1(out); err != nil {
				return err
			}
		case "table2":
			if err := experiment.WriteTable2(out); err != nil {
				return err
			}
		case "fig2":
			rows, err := experiment.Figure2(cfg)
			if err != nil {
				return err
			}
			if err := experiment.WriteRows(out, fmt.Sprintf("Figure 2 (%s)", cfg.Energy), rows); err != nil {
				return err
			}
			if *chart {
				if err := experiment.WriteRowsChart(out, fmt.Sprintf("Figure 2 (%s)", cfg.Energy), rows); err != nil {
					return err
				}
			}
			docs = append(docs, experiment.JSONDocument{
				Experiment: "fig2", Config: experiment.Describe(cfg), Rows: rows,
			})
		case "fig3":
			rows, err := experiment.Figure3(cfg, nil)
			if err != nil {
				return err
			}
			if err := experiment.WriteFig3(out, rows); err != nil {
				return err
			}
			if *chart {
				if err := experiment.WriteFig3Chart(out, rows); err != nil {
					return err
				}
			}
			docs = append(docs, experiment.JSONDocument{
				Experiment: "fig3", Config: experiment.Describe(cfg), Fig3Rows: rows,
			})
		case "assurance":
			rows, err := experiment.Assurance(cfg)
			if err != nil {
				return err
			}
			if err := experiment.WriteAssurance(out, rows); err != nil {
				return err
			}
			docs = append(docs, experiment.JSONDocument{
				Experiment: "assurance", Config: experiment.Describe(cfg), Assurance: rows,
			})
		case "ablation":
			rows, err := experiment.Ablation(cfg)
			if err != nil {
				return err
			}
			if err := experiment.WriteRows(out, "Ablation", rows); err != nil {
				return err
			}
			docs = append(docs, experiment.JSONDocument{
				Experiment: "ablation", Config: experiment.Describe(cfg), Rows: rows,
			})
		case "budget":
			rows, err := experiment.Budget(cfg, nil)
			if err != nil {
				return err
			}
			if err := experiment.WriteBudget(out, rows); err != nil {
				return err
			}
		case "latency":
			rows, err := experiment.SwitchLatency(cfg, nil)
			if err != nil {
				return err
			}
			if err := experiment.WriteLatency(out, rows); err != nil {
				return err
			}
		case "ladder":
			rows, err := experiment.Ladder(cfg, nil)
			if err != nil {
				return err
			}
			if err := experiment.WriteLadder(out, rows); err != nil {
				return err
			}
		case "contention":
			rows, err := experiment.Contention(cfg, nil)
			if err != nil {
				return err
			}
			if err := experiment.WriteContention(out, rows); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown experiment %q", e)
		}
		fmt.Fprintln(out)
		fmt.Fprintf(diag, "euasim: %s done in %v (%d workers)\n",
			e, time.Since(start).Round(time.Millisecond), *workers)
	}
	fmt.Fprintf(diag, "euasim: all experiments done in %v\n", time.Since(total).Round(time.Millisecond))
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		for _, doc := range docs {
			if err := experiment.WriteJSON(f, doc); err != nil {
				return err
			}
		}
		fmt.Fprintf(out, "JSON results written to %s\n", *jsonPath)
	}
	return nil
}

func parseLoads(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad load %q: %w", p, err)
		}
		if v <= 0 {
			return nil, fmt.Errorf("load %v must be positive", v)
		}
		out = append(out, v)
	}
	return out, nil
}
