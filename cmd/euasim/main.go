// Command euasim regenerates the paper's evaluation artifacts: Table 1
// (task settings), Table 2 (energy settings), Figure 2 (normalized utility
// and energy vs load, per energy setting), Figure 3 (energy vs load per
// UAM bound), the Section 4 assurance verification, and the EUA* ablation
// study.
//
// Usage:
//
//	euasim -exp all
//	euasim -exp fig2 -energy E3 -seeds 5 -horizon 2
//	euasim -exp fig3 -loads 0.2,0.5,0.9,1.4
//	euasim -exp fig2 -workers 8
//	euasim -exp threshold -admission-bench BENCH_admission.json
//	euasim -exp gaps -gaps-bench BENCH_gaps.json
//	euasim -exp fig2 -oracles
//	euasim -admit tasks.json -scheme EUA* -load 1.2
//
// -exp threshold bisects each scheduler's empirical sharp load threshold
// and compares it against the analytical admission bounds (see
// internal/admission); -admit runs the same O(n) analytical triage on a
// task-set document offline and prints the accept / must-simulate /
// reject verdict. -exp gaps measures each scheduler's distance from
// provable optimality against the offline oracles of internal/oracle
// (YDS energy lower bound, branch-and-bound utility upper bound);
// -oracles adds the same gap columns to the fig2/ablation sweeps.
//
// Simulations fan out across -workers goroutines (default: all cores).
// Stdout is bit-identical for every worker count; wall-clock and progress
// reporting go to stderr.
//
// Robustness: -timeout bounds each sweep cell, -retries re-runs failing
// cells, -checkpoint/-resume persist completed cells across kills, and
// -faults injects a deterministic fault plan. A failing cell is reported
// with its (load, seed, scheme) coordinates; the remaining cells still
// run, partial results are flushed, and only then does euasim exit
// non-zero. SIGINT/SIGTERM stop the sweep cooperatively the same way.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/euastar/euastar/internal/energy"
	"github.com/euastar/euastar/internal/experiment"
	"github.com/euastar/euastar/internal/faults"
	"github.com/euastar/euastar/internal/telemetry"
)

func main() {
	// Exit codes: 0 on success (including -h/-help), 1 on any error.
	// Progress/timing goes to stderr so stdout stays a clean, seed- and
	// worker-count-deterministic artifact suitable for diffing.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	if err := runWithSignals(os.Args[1:], os.Stdout, os.Stderr, sigc); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "euasim:", err)
		os.Exit(1)
	}
}

// run executes euasim without OS signal wiring (the test entry point).
func run(args []string, out, diag io.Writer) error {
	return runWithSignals(args, out, diag, nil)
}

// runWithSignals executes euasim; a value on sigs stops the sweep
// cooperatively: completed cells are kept (and checkpointed), partial
// results are flushed, and a non-nil error is returned.
func runWithSignals(args []string, out, diag io.Writer, sigs <-chan os.Signal) error {
	fs := flag.NewFlagSet("euasim", flag.ContinueOnError)
	fs.SetOutput(diag)
	var (
		exp        = fs.String("exp", "all", "experiment: table1|table2|fig2|fig3|assurance|ablation|budget|latency|ladder|contention|faults|threshold|gaps|speedup|all")
		chart      = fs.Bool("chart", false, "additionally render fig2/fig3 as ASCII charts")
		preset     = fs.String("energy", "E1", "energy setting for fig2/ablation: E1|E2|E3")
		loads      = fs.String("loads", "", "comma-separated load sweep (default 0.2..1.8)")
		seeds      = fs.Int("seeds", 3, "number of replications (seeds 1..n)")
		horizon    = fs.Float64("horizon", 1.0, "arrival horizon per run in seconds")
		workers    = fs.Int("workers", runtime.GOMAXPROCS(0), "simulations run concurrently (results are identical for any value; counts above the number of jobs are clamped)")
		jsonPath   = fs.String("json", "", "additionally write results as JSON to this file")
		timeout    = fs.Duration("timeout", 0, "wall-clock limit per sweep cell (0 = none); a timed-out cell is reported and the sweep continues")
		retries    = fs.Int("retries", 0, "extra attempts for a failing sweep cell")
		checkpoint = fs.String("checkpoint", "", "persist completed sweep cells to this JSON file (atomic writes)")
		resume     = fs.Bool("resume", false, "reuse completed cells from the -checkpoint file instead of recomputing")
		faultSpec  = fs.String("faults", "", "deterministic fault plan, e.g. seed=7,overrun=0.1,sticky=0.05 (see README)")
		fastpath   = fs.Bool("fastpath", false, "run EUA*-family schedulers on the incremental fast-path core (bit-identical decisions, see DESIGN.md §8)")
		stats      = fs.Bool("stats", false, "print an end-of-run telemetry snapshot (decision latencies, preemptions, frequency switches) to stderr")
		remote     = fs.String("remote", "", "submit sweeps to a euad daemon at this base URL instead of running locally (fig2|fig3|assurance|ablation)")
		jobID      = fs.String("job-id", "", "idempotency-key prefix for -remote submissions (default: random per invocation)")
		admit      = fs.String("admit", "", "print the analytical admission verdict for this task-set JSON document and exit (offline triage; see -scheme and -load)")
		admScheme  = fs.String("scheme", "EUA*", "with -admit: scheduling scheme to triage for")
		admLoad    = fs.Float64("load", 0, "with -admit: scale the set to this system load first (0 = as given)")
		admBench   = fs.String("admission-bench", "", "with -exp threshold: additionally write the BENCH_admission.json baseline to this file")
		oracles    = fs.Bool("oracles", false, "annotate fig2/ablation rows with optimality-gap columns (YDS energy lower bound, branch-and-bound utility upper bound; see DESIGN.md §13)")
		gapsBench  = fs.String("gaps-bench", "", "with -exp gaps: additionally write the BENCH_gaps.json baseline to this file")
		cores      = fs.Int("cores", 0, "simulated DVS cores (0 or 1 = the paper's uniprocessor; >1 runs every scheme partitioned, see -partition and DESIGN.md §15)")
		partFlag   = fs.String("partition", "ff", "multiprocessor policy with -cores > 1: ff (first-fit) | wf (worst-fit) | global (shared queue, top-m UER)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers <= 0 {
		return fmt.Errorf("-workers must be >= 1, got %d", *workers)
	}
	if *seeds <= 0 {
		return fmt.Errorf("-seeds must be >= 1, got %d", *seeds)
	}
	if *retries < 0 {
		return fmt.Errorf("-retries must be >= 0, got %d", *retries)
	}
	if *timeout < 0 {
		return fmt.Errorf("-timeout must be >= 0, got %v", *timeout)
	}
	if *resume && *checkpoint == "" {
		return fmt.Errorf("-resume needs -checkpoint")
	}
	if *cores < 0 {
		return fmt.Errorf("-cores must be >= 0, got %d", *cores)
	}
	switch *partFlag {
	case "ff", "wf", "global":
	default:
		return fmt.Errorf("-partition must be ff, wf or global, got %q", *partFlag)
	}
	if *admit != "" {
		return runAdmit(*admit, *admScheme, *admLoad, *jsonPath, out)
	}

	if *remote != "" {
		// Execution-control flags have no meaning when the daemon runs the
		// sweep; rejecting them beats silently ignoring them.
		for _, f := range []struct {
			name string
			set  bool
		}{
			{"-chart", *chart}, {"-checkpoint", *checkpoint != ""}, {"-resume", *resume},
			{"-timeout", *timeout != 0}, {"-retries", *retries != 0}, {"-stats", *stats},
		} {
			if f.set {
				return fmt.Errorf("%s is not supported with -remote", f.name)
			}
		}
		var parsed []float64
		if *loads != "" {
			var err error
			if parsed, err = parseLoads(*loads); err != nil {
				return err
			}
		}
		return runRemote(remoteOpts{
			base:     *remote,
			jobID:    *jobID,
			exp:      *exp,
			preset:   *preset,
			loads:    parsed,
			seeds:    *seeds,
			horizon:  *horizon,
			faults:   *faultSpec,
			fastpath: *fastpath,
			jsonPath: *jsonPath,
		}, out, diag, sigs)
	}

	cfg := experiment.Config{
		Energy:    energy.Preset(*preset),
		Horizon:   *horizon,
		Workers:   *workers,
		Timeout:   *timeout,
		Retries:   *retries,
		FastPath:  *fastpath,
		Oracles:   *oracles,
		Cores:     *cores,
		Partition: *partFlag,
	}
	if *loads != "" {
		parsed, err := parseLoads(*loads)
		if err != nil {
			return err
		}
		cfg.Loads = parsed
	}
	for i := 1; i <= *seeds; i++ {
		cfg.Seeds = append(cfg.Seeds, uint64(i))
	}
	if *faultSpec != "" {
		plan, err := faults.Parse(*faultSpec)
		if err != nil {
			return err
		}
		cfg.Faults = plan
	}
	if *stats {
		// The snapshot goes to stderr with the other diagnostics: decision
		// latencies are wall-clock, and stdout must stay deterministic.
		cfg.Telemetry = telemetry.NewRegistry()
	}
	if *checkpoint != "" {
		store, err := experiment.OpenCheckpoint(*checkpoint, *resume)
		if errors.Is(err, experiment.ErrCheckpointCorrupt) {
			// A damaged checkpoint costs recomputation, never the run: fall
			// back to a fresh store whose first save replaces the bad file.
			fmt.Fprintf(diag, "euasim: %v; ignoring %s and starting fresh\n", err, *checkpoint)
			store, err = experiment.OpenCheckpoint(*checkpoint, false)
		}
		if err != nil {
			return err
		}
		cfg.Store = store
	}

	// Signal handling: the first SIGINT/SIGTERM closes the interrupt
	// channel every sweep cell observes; cells stop at their next engine
	// event, completed work is flushed, and euasim exits non-zero.
	if sigs != nil {
		intr := make(chan struct{})
		noteSignal := func(s os.Signal) {
			fmt.Fprintf(diag, "euasim: received %v, stopping and flushing partial results\n", s)
			close(intr)
		}
		// A signal already pending at startup takes effect before any cell
		// runs; only later arrivals need the watcher goroutine.
		select {
		case s := <-sigs:
			noteSignal(s)
		default:
			stopWatch := make(chan struct{})
			defer close(stopWatch)
			go func() {
				select {
				case s := <-sigs:
					noteSignal(s)
				case <-stopWatch:
				}
			}()
		}
		cfg.Interrupt = intr
	}

	var docs []experiment.JSONDocument
	todo := strings.Split(*exp, ",")
	if *exp == "all" {
		todo = []string{"table1", "table2", "fig2", "fig3", "assurance", "ablation", "budget", "latency", "ladder", "contention", "faults", "threshold", "gaps", "speedup"}
	}
	// A sweep with failed cells returns its completed rows alongside a
	// *experiment.SweepError. Those partial results are still written (and
	// included in -json) before the failure is reported, so a single
	// poisoned cell never discards its siblings' work. sweepFailures
	// accumulates across experiments; euasim exits non-zero at the end.
	var sweepFailures []error
	sweepDone := func(e string, err error) (stop bool) {
		if err == nil {
			return false
		}
		fmt.Fprintf(diag, "euasim: %s: %v\n", e, err)
		sweepFailures = append(sweepFailures, fmt.Errorf("%s: %w", e, err))
		var se *experiment.SweepError
		return errors.As(err, &se) && se.Interrupted
	}
	total := time.Now()
	for _, e := range todo {
		start := time.Now()
		fmt.Fprintf(out, "== %s (%s) ==\n", e, experiment.Describe(cfg))
		var sweepErr error
		switch e {
		case "table1":
			if err := experiment.WriteTable1(out); err != nil {
				return err
			}
		case "table2":
			if err := experiment.WriteTable2(out); err != nil {
				return err
			}
		case "fig2":
			rows, err := experiment.Figure2(cfg)
			sweepErr = err
			if rows != nil {
				if err := experiment.WriteRows(out, fmt.Sprintf("Figure 2 (%s)", cfg.Energy), rows); err != nil {
					return err
				}
				if *chart {
					if err := experiment.WriteRowsChart(out, fmt.Sprintf("Figure 2 (%s)", cfg.Energy), rows); err != nil {
						return err
					}
				}
				docs = append(docs, experiment.JSONDocument{
					Experiment: "fig2", Config: experiment.Describe(cfg), Rows: rows,
				})
			}
		case "fig3":
			rows, err := experiment.Figure3(cfg, nil)
			sweepErr = err
			if rows != nil {
				if err := experiment.WriteFig3(out, rows); err != nil {
					return err
				}
				if *chart {
					if err := experiment.WriteFig3Chart(out, rows); err != nil {
						return err
					}
				}
				docs = append(docs, experiment.JSONDocument{
					Experiment: "fig3", Config: experiment.Describe(cfg), Fig3Rows: rows,
				})
			}
		case "assurance":
			rows, err := experiment.Assurance(cfg)
			sweepErr = err
			if rows != nil {
				if err := experiment.WriteAssurance(out, rows); err != nil {
					return err
				}
				docs = append(docs, experiment.JSONDocument{
					Experiment: "assurance", Config: experiment.Describe(cfg), Assurance: rows,
				})
			}
		case "ablation":
			rows, err := experiment.Ablation(cfg)
			sweepErr = err
			if rows != nil {
				if err := experiment.WriteRows(out, "Ablation", rows); err != nil {
					return err
				}
				docs = append(docs, experiment.JSONDocument{
					Experiment: "ablation", Config: experiment.Describe(cfg), Rows: rows,
				})
			}
		case "budget":
			rows, err := experiment.Budget(cfg, nil)
			sweepErr = err
			if rows != nil {
				if err := experiment.WriteBudget(out, rows); err != nil {
					return err
				}
			}
		case "latency":
			rows, err := experiment.SwitchLatency(cfg, nil)
			sweepErr = err
			if rows != nil {
				if err := experiment.WriteLatency(out, rows); err != nil {
					return err
				}
			}
		case "ladder":
			rows, err := experiment.Ladder(cfg, nil)
			sweepErr = err
			if rows != nil {
				if err := experiment.WriteLadder(out, rows); err != nil {
					return err
				}
			}
		case "contention":
			rows, err := experiment.Contention(cfg, nil)
			sweepErr = err
			if rows != nil {
				if err := experiment.WriteContention(out, rows); err != nil {
					return err
				}
			}
		case "faults":
			rows, err := experiment.FaultSweep(cfg, nil)
			sweepErr = err
			if rows != nil {
				if err := experiment.WriteFaults(out, rows); err != nil {
					return err
				}
			}
		case "threshold":
			rows, err := experiment.Threshold(cfg, nil)
			sweepErr = err
			if rows != nil {
				if err := experiment.WriteThreshold(out, rows); err != nil {
					return err
				}
				docs = append(docs, experiment.JSONDocument{
					Experiment: "threshold", Config: experiment.Describe(cfg), Threshold: rows,
				})
				if *admBench != "" {
					f, err := os.Create(*admBench)
					if err != nil {
						return err
					}
					werr := experiment.WriteAdmissionBench(f, cfg, rows)
					if cerr := f.Close(); werr == nil {
						werr = cerr
					}
					if werr != nil {
						return werr
					}
					fmt.Fprintf(out, "admission baseline written to %s\n", *admBench)
				}
			}
		case "speedup":
			rows, err := experiment.Speedup(cfg, nil)
			sweepErr = err
			if rows != nil {
				if err := experiment.WriteSpeedup(out, rows); err != nil {
					return err
				}
				docs = append(docs, experiment.JSONDocument{
					Experiment: "speedup", Config: experiment.Describe(cfg), Speedup: rows,
				})
			}
		case "gaps":
			rows, err := experiment.Gaps(cfg)
			sweepErr = err
			if rows != nil {
				if err := experiment.WriteGaps(out, rows); err != nil {
					return err
				}
				docs = append(docs, experiment.JSONDocument{
					// Gaps normalizes its config (workload, horizon cap), so
					// record the effective description, not the CLI one.
					Experiment: "gaps", Config: experiment.Describe(experiment.GapsConfig(cfg)), Gaps: rows,
				})
				if *gapsBench != "" {
					f, err := os.Create(*gapsBench)
					if err != nil {
						return err
					}
					werr := experiment.WriteGapsBench(f, cfg, rows)
					if cerr := f.Close(); werr == nil {
						werr = cerr
					}
					if werr != nil {
						return werr
					}
					fmt.Fprintf(out, "gaps baseline written to %s\n", *gapsBench)
				}
			}
		default:
			return fmt.Errorf("unknown experiment %q", e)
		}
		fmt.Fprintln(out)
		fmt.Fprintf(diag, "euasim: %s done in %v (%d workers)\n",
			e, time.Since(start).Round(time.Millisecond), *workers)
		if sweepDone(e, sweepErr) {
			break // interrupted: flush what we have and exit
		}
	}
	fmt.Fprintf(diag, "euasim: all experiments done in %v\n", time.Since(total).Round(time.Millisecond))
	if *stats {
		fmt.Fprintln(diag, "euasim: telemetry snapshot")
		if err := telemetry.WriteStats(diag, cfg.Telemetry.Snapshot()); err != nil {
			return err
		}
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		for _, doc := range docs {
			if err := experiment.WriteJSON(f, doc); err != nil {
				return err
			}
		}
		fmt.Fprintf(out, "JSON results written to %s\n", *jsonPath)
	}
	if len(sweepFailures) > 0 {
		return errors.Join(sweepFailures...)
	}
	return nil
}

func parseLoads(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad load %q: %w", p, err)
		}
		if v <= 0 {
			return nil, fmt.Errorf("load %v must be positive", v)
		}
		out = append(out, v)
	}
	return out, nil
}
