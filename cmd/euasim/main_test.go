package main

import (
	"bytes"
	"errors"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLoads(t *testing.T) {
	got, err := parseLoads("0.2, 0.5,1.8")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0.2 || got[2] != 1.8 {
		t.Fatalf("loads = %v", got)
	}
	for _, bad := range []string{"", "x", "0.5,-1", "0"} {
		if _, err := parseLoads(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestRunTables(t *testing.T) {
	if err := run([]string{"-exp", "table1,table2"}, io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunSmallSweeps(t *testing.T) {
	args := []string{"-seeds", "1", "-horizon", "0.3", "-loads", "0.5,1.5"}
	for _, exp := range []string{"fig2", "fig3", "assurance", "ablation", "budget", "latency", "ladder", "contention"} {
		if err := run(append([]string{"-exp", exp}, args...), io.Discard, io.Discard); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
}

func TestRunChartAndJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	err := run([]string{"-exp", "fig2", "-seeds", "1", "-horizon", "0.3",
		"-loads", "0.5", "-chart", "-json", path}, io.Discard, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"experiment": "fig2"`) {
		t.Fatalf("json output: %.200s", data)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "nonsense"}, io.Discard, io.Discard); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestWorkersFlag pins the -workers contract: invalid counts are rejected
// before any simulation runs, counts above the number of jobs are clamped
// and still work, and a valid run accepts any positive count.
func TestWorkersFlag(t *testing.T) {
	small := []string{"-exp", "fig2", "-seeds", "1", "-horizon", "0.3", "-loads", "0.5"}
	cases := []struct {
		name    string
		workers string
		wantErr bool
	}{
		{name: "negative", workers: "-3", wantErr: true},
		{name: "zero", workers: "0", wantErr: true},
		{name: "one", workers: "1", wantErr: false},
		{name: "several", workers: "7", wantErr: false},
		{name: "more-than-jobs", workers: "500", wantErr: false},
		{name: "not-a-number", workers: "many", wantErr: true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			args := append([]string{"-workers", c.workers}, small...)
			err := run(args, io.Discard, io.Discard)
			if c.wantErr && err == nil {
				t.Fatalf("-workers %s accepted", c.workers)
			}
			if !c.wantErr && err != nil {
				t.Fatalf("-workers %s: %v", c.workers, err)
			}
		})
	}
}

// TestWorkersOutputIdentical is the CLI-level determinism check: stdout
// must be byte-identical for every worker count (timing goes to the diag
// writer, which is allowed to differ).
func TestWorkersOutputIdentical(t *testing.T) {
	capture := func(workers string) string {
		var out bytes.Buffer
		err := run([]string{"-exp", "fig2,assurance", "-seeds", "2", "-horizon", "0.3",
			"-loads", "0.5,1.5", "-workers", workers}, &out, io.Discard)
		if err != nil {
			t.Fatalf("workers=%s: %v", workers, err)
		}
		return out.String()
	}
	seq := capture("1")
	if par := capture("8"); par != seq {
		t.Fatalf("stdout differs between -workers 1 and -workers 8:\n--- 1 ---\n%s--- 8 ---\n%s", seq, par)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-loads", "abc"}, io.Discard, io.Discard); err == nil {
		t.Fatal("bad loads accepted")
	}
	if err := run([]string{"-definitely-not-a-flag"}, io.Discard, io.Discard); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-seeds", "0"}, io.Discard, io.Discard); err == nil {
		t.Fatal("zero seeds accepted")
	}
	// -h must surface flag.ErrHelp (main maps it to exit code 0).
	if err := run([]string{"-h"}, io.Discard, io.Discard); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
}

// TestDiagReporting checks that progress/timing lands on the diag writer,
// not on stdout.
func TestDiagReporting(t *testing.T) {
	var out, diag bytes.Buffer
	err := run([]string{"-exp", "table1", "-workers", "2"}, &out, &diag)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(diag.String(), "table1 done in") {
		t.Fatalf("diag output missing timing: %q", diag.String())
	}
	if strings.Contains(out.String(), "done in") {
		t.Fatal("timing leaked into stdout")
	}
}

// TestFaultsFlag: an injected fault plan keeps the CLI determinism
// contract (stdout identical across worker counts) and bad specs are
// rejected at the flag boundary.
func TestFaultsFlag(t *testing.T) {
	capture := func(workers string) string {
		var out bytes.Buffer
		err := run([]string{"-exp", "fig2", "-seeds", "2", "-horizon", "0.3",
			"-loads", "0.5,1.5", "-workers", workers,
			"-faults", "seed=11,overrun=0.2,sticky=0.2"}, &out, io.Discard)
		if err != nil {
			t.Fatalf("workers=%s: %v", workers, err)
		}
		return out.String()
	}
	seq := capture("1")
	if par := capture("8"); par != seq {
		t.Fatalf("faulted stdout differs between -workers 1 and -workers 8:\n--- 1 ---\n%s--- 8 ---\n%s", seq, par)
	}
	for _, spec := range []string{"overrun=2", "nonsense", "bursts=x"} {
		if err := run([]string{"-exp", "fig2", "-faults", spec}, io.Discard, io.Discard); err == nil {
			t.Fatalf("-faults %q accepted", spec)
		}
	}
}

// TestFaultSweepExperiment smoke-tests the dedicated faults experiment
// through the CLI.
func TestFaultSweepExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "faults", "-seeds", "1", "-horizon", "0.3"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "intensity") {
		t.Fatalf("faults experiment wrote no table:\n%s", out.String())
	}
}

// TestResumeNeedsCheckpoint pins the flag dependency.
func TestResumeNeedsCheckpoint(t *testing.T) {
	if err := run([]string{"-exp", "fig2", "-resume"}, io.Discard, io.Discard); err == nil {
		t.Fatal("-resume without -checkpoint accepted")
	}
}

// TestCheckpointResumeIdenticalStdout: a checkpointed run, then a -resume
// run that recomputes nothing, must both match the plain run byte for
// byte — resuming changes where results come from, never what they are.
func TestCheckpointResumeIdenticalStdout(t *testing.T) {
	args := []string{"-exp", "fig2", "-seeds", "2", "-horizon", "0.3", "-loads", "0.5,1.5"}
	capture := func(extra ...string) string {
		var out bytes.Buffer
		if err := run(append(append([]string{}, args...), extra...), &out, io.Discard); err != nil {
			t.Fatalf("%v: %v", extra, err)
		}
		return out.String()
	}
	plain := capture()
	path := filepath.Join(t.TempDir(), "ckpt.json")
	first := capture("-checkpoint", path)
	resumed := capture("-checkpoint", path, "-resume")
	if first != plain {
		t.Fatalf("checkpointed stdout differs from plain run:\n--- plain ---\n%s--- checkpointed ---\n%s", plain, first)
	}
	if resumed != plain {
		t.Fatalf("resumed stdout differs from plain run:\n--- plain ---\n%s--- resumed ---\n%s", plain, resumed)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("checkpoint file missing after run: %v", err)
	}
}

// TestSignalFlushesPartialResults: a SIGINT delivered before the sweep
// starts must still produce the experiment header on stdout, a non-nil
// error, and a diag line saying results were flushed.
func TestSignalFlushesPartialResults(t *testing.T) {
	sigs := make(chan os.Signal, 1)
	sigs <- os.Interrupt
	var out, diag bytes.Buffer
	err := runWithSignals([]string{"-exp", "fig2", "-seeds", "1", "-horizon", "0.3",
		"-loads", "0.5"}, &out, &diag, sigs)
	if err == nil {
		t.Fatal("interrupted run reported success")
	}
	if !strings.Contains(diag.String(), "stopping and flushing") {
		t.Fatalf("diag missing flush notice: %q", diag.String())
	}
	if !strings.Contains(out.String(), "== fig2") {
		t.Fatalf("stdout missing experiment header: %q", out.String())
	}
}

// TestTimeoutReportedAndPartialFlushed: with an unmeetable per-cell
// timeout every cell fails, yet euasim still writes the (empty) table and
// the -json artifact before exiting non-zero, and the error names the
// timeout.
func TestTimeoutReportedAndPartialFlushed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	var out bytes.Buffer
	// The horizon is deliberately huge: the 1ns timeout fires via a
	// watcher goroutine, and on a loaded machine a short cell could finish
	// before the watcher is ever scheduled. A long cell cannot, and it
	// still exits almost immediately once the interrupt lands.
	err := run([]string{"-exp", "fig2", "-seeds", "1", "-horizon", "500",
		"-loads", "0.5", "-timeout", "1ns", "-json", path}, &out, io.Discard)
	if err == nil {
		t.Fatal("timed-out sweep reported success")
	}
	if !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("error does not mention the timeout: %v", err)
	}
	if !strings.Contains(out.String(), "Figure 2") {
		t.Fatalf("partial table not flushed:\n%s", out.String())
	}
	if _, statErr := os.Stat(path); statErr != nil {
		t.Fatalf("json artifact not flushed before non-zero exit: %v", statErr)
	}
}

// TestStatsFlag: -stats appends the telemetry table to stderr — covering
// scheduler decision latencies, preemptions and frequency switches — and
// leaves stdout byte-identical to a run without it.
func TestStatsFlag(t *testing.T) {
	args := []string{"-exp", "fig2", "-seeds", "1", "-horizon", "0.3", "-loads", "0.5"}
	var plainOut bytes.Buffer
	if err := run(args, &plainOut, io.Discard); err != nil {
		t.Fatal(err)
	}
	var out, diag bytes.Buffer
	if err := run(append(args, "-stats"), &out, &diag); err != nil {
		t.Fatal(err)
	}
	if out.String() != plainOut.String() {
		t.Error("-stats changed stdout; the snapshot must go to stderr only")
	}
	text := diag.String()
	for _, want := range []string{
		"euasim: telemetry snapshot",
		"HISTOGRAM",
		"euastar_sched_decide_seconds",
		"euastar_engine_preemptions_total",
		"euastar_engine_freq_switches_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("stderr missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("stderr:\n%s", text)
	}
}

// TestStatsRejectedWithRemote: -stats needs local runs to observe.
func TestStatsRejectedWithRemote(t *testing.T) {
	err := run([]string{"-exp", "fig2", "-remote", "http://127.0.0.1:1", "-stats"}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-stats") {
		t.Fatalf("err = %v, want -stats rejection", err)
	}
}
