package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLoads(t *testing.T) {
	got, err := parseLoads("0.2, 0.5,1.8")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0.2 || got[2] != 1.8 {
		t.Fatalf("loads = %v", got)
	}
	for _, bad := range []string{"", "x", "0.5,-1", "0"} {
		if _, err := parseLoads(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestRunTables(t *testing.T) {
	if err := run([]string{"-exp", "table1,table2"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunSmallSweeps(t *testing.T) {
	args := []string{"-seeds", "1", "-horizon", "0.3", "-loads", "0.5,1.5"}
	for _, exp := range []string{"fig2", "fig3", "assurance", "ablation", "budget", "latency", "ladder", "contention"} {
		if err := run(append([]string{"-exp", exp}, args...), io.Discard); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
}

func TestRunChartAndJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	err := run([]string{"-exp", "fig2", "-seeds", "1", "-horizon", "0.3",
		"-loads", "0.5", "-chart", "-json", path}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"experiment": "fig2"`) {
		t.Fatalf("json output: %.200s", data)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "nonsense"}, io.Discard); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-loads", "abc"}, io.Discard); err == nil {
		t.Fatal("bad loads accepted")
	}
	if err := run([]string{"-definitely-not-a-flag"}, io.Discard); err == nil {
		t.Fatal("bad flag accepted")
	}
}
