package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var (
	cliBuildOnce sync.Once
	cliBin       string
	cliBuildErr  error
)

func cliBinary(t *testing.T) string {
	t.Helper()
	cliBuildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "euasim-bin-")
		if err != nil {
			cliBuildErr = err
			return
		}
		cliBin = filepath.Join(dir, "euasim")
		out, err := exec.Command("go", "build", "-o", cliBin, ".").CombinedOutput()
		if err != nil {
			cliBuildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if cliBuildErr != nil {
		t.Fatal(cliBuildErr)
	}
	return cliBin
}

// TestChaosKillResumeCLI is the CLI crash-safety acceptance test: SIGKILL
// euasim mid-sweep under a fault plan, re-run with -resume, and require
// stdout to be bit-identical to an uninterrupted run. A corrupt
// checkpoint must degrade to a warned fresh start, never a crash.
func TestChaosKillResumeCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test is multi-second; skipped in -short")
	}
	bin := cliBinary(t)
	args := []string{"-exp", "fig2", "-seeds", "3", "-horizon", "2",
		"-workers", "2", "-faults", "seed=7,overrun=0.1,sticky=0.05"}

	// Reference: uninterrupted, no checkpoint.
	var ref bytes.Buffer
	refCmd := exec.Command(bin, args...)
	refCmd.Stdout = &ref
	start := time.Now()
	if err := refCmd.Run(); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	refDur := time.Since(start)

	// Chaos: SIGKILL partway through a checkpointed run. No cleanup code
	// runs; the checkpoint on disk is whatever the last atomic flush left.
	ck := filepath.Join(t.TempDir(), "ck.json")
	victim := exec.Command(bin, append(args, "-checkpoint", ck)...)
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(refDur * 2 / 5)
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	victim.Wait()

	// Resume must complete the sweep with stdout bit-identical to the
	// uninterrupted reference.
	var resumed bytes.Buffer
	resumeCmd := exec.Command(bin, append(args, "-checkpoint", ck, "-resume")...)
	resumeCmd.Stdout = &resumed
	if err := resumeCmd.Run(); err != nil {
		t.Fatalf("resume run: %v", err)
	}
	if !bytes.Equal(ref.Bytes(), resumed.Bytes()) {
		t.Fatalf("resumed stdout differs from uninterrupted run:\n--- reference ---\n%s\n--- resumed ---\n%s", &ref, &resumed)
	}

	// A corrupt checkpoint is warned about and recomputed from scratch:
	// same stdout, exit 0.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("garbage{{{"), 0o644); err != nil {
		t.Fatal(err)
	}
	var fresh, diag bytes.Buffer
	freshCmd := exec.Command(bin, append(args, "-checkpoint", bad, "-resume")...)
	freshCmd.Stdout = &fresh
	freshCmd.Stderr = &diag
	if err := freshCmd.Run(); err != nil {
		t.Fatalf("corrupt-checkpoint run: %v\nstderr:\n%s", err, &diag)
	}
	if !strings.Contains(diag.String(), "starting fresh") {
		t.Fatalf("expected corruption warning on stderr, got:\n%s", &diag)
	}
	if !bytes.Equal(ref.Bytes(), fresh.Bytes()) {
		t.Fatalf("fresh-start stdout differs from reference")
	}
}
