package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"github.com/euastar/euastar/internal/admission"
	"github.com/euastar/euastar/internal/config"
	"github.com/euastar/euastar/internal/cpu"
)

// runAdmit implements euasim -admit: load the task-set document, run the
// O(n) analytical admission test for the scheme, and print the verdict
// with the quantities it was derived from — the offline twin of euad's
// fast-reject path. The exit code is 0 for every verdict: the command
// answers a question, it does not gate anything itself.
func runAdmit(path, scheme string, load float64, jsonPath string, out io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	ts, err := config.Load(f)
	if err != nil {
		return err
	}
	ft := cpu.PowerNowK6()
	if load > 0 {
		ts = ts.ScaleToLoad(load, ft.Max())
	}
	res, err := admission.Analyze(ts, ft, scheme)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, res.String())
	fmt.Fprintf(out, "utilization=%.4f floor_density=%.4f busy_period=%.4gs min_critical=%.4gs\n",
		res.Utilization, res.FloorDensity, res.BusyPeriod, res.MinCritical)
	if jsonPath != "" {
		jf, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(jf)
		enc.SetIndent("", "  ")
		werr := enc.Encode(res)
		if cerr := jf.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Fprintf(out, "JSON verdict written to %s\n", jsonPath)
	}
	return nil
}
