package main

import (
	"bytes"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/euastar/euastar/internal/server"
)

// startRemote stands up a real in-process euad core behind httptest.
func startRemote(t *testing.T) *httptest.Server {
	t.Helper()
	srv, err := server.New(server.Config{DataDir: t.TempDir(), Workers: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

// TestRemoteMatchesLocalOutput is the -remote contract: the daemon-rendered
// tables must be byte-identical to running the same sweep locally.
func TestRemoteMatchesLocalOutput(t *testing.T) {
	ts := startRemote(t)
	args := []string{"-exp", "fig2,fig3,assurance,ablation", "-seeds", "1", "-horizon", "0.1", "-loads", "0.4,1.0"}

	var local, remote bytes.Buffer
	if err := run(args, &local, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-remote", ts.URL, "-job-id", "rt"), &remote, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(local.Bytes(), remote.Bytes()) {
		t.Fatalf("remote stdout differs from local:\n--- local ---\n%s\n--- remote ---\n%s", &local, &remote)
	}

	// The -json documents must round-trip through the daemon identically
	// too (this exercises Fig3Row's Unmarshal/Marshal symmetry).
	localJSON := filepath.Join(t.TempDir(), "out.json")
	remoteJSON := filepath.Join(t.TempDir(), "out.json")
	if err := run(append(args, "-json", localJSON), io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	// Same -job-id: the daemon replays the already-computed results.
	if err := run(append(args, "-remote", ts.URL, "-job-id", "rt", "-json", remoteJSON), io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(localJSON)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(remoteJSON)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("remote -json differs from local:\n--- local ---\n%s\n--- remote ---\n%s", a, b)
	}
}

// TestRemoteFailedJobSurfaces checks that a job failing server-side
// validation comes back as a structured, non-zero-exit error.
func TestRemoteFailedJobSurfaces(t *testing.T) {
	ts := startRemote(t)
	err := run([]string{"-exp", "fig2", "-seeds", "1", "-horizon", "0.1", "-loads", "0.4",
		"-faults", "not-a-plan", "-remote", ts.URL, "-job-id", "bad"}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "invalid") {
		t.Fatalf("expected structured invalid error, got %v", err)
	}
}

func TestRemoteFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-remote", "http://x", "-exp", "fig2", "-chart"},
		{"-remote", "http://x", "-exp", "fig2", "-checkpoint", "c.json"},
		{"-remote", "http://x", "-exp", "fig2", "-retries", "1"},
		{"-remote", "http://x", "-exp", "fig2", "-timeout", "1s"},
		{"-remote", "http://x", "-exp", "table1"},
		{"-remote", "http://x", "-exp", "all"},
	}
	for _, args := range cases {
		if err := run(args, io.Discard, io.Discard); err == nil {
			t.Errorf("args %v: expected an error", args)
		}
	}
}
