package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/euastar/euastar/internal/client"
	"github.com/euastar/euastar/internal/experiment"
	"github.com/euastar/euastar/internal/server"
)

// remoteOpts is the subset of euasim flags a remote run forwards to euad.
type remoteOpts struct {
	base     string // euad address
	jobID    string // idempotency-key prefix ("" = random per invocation)
	exp      string
	preset   string
	loads    []float64
	seeds    int
	horizon  float64
	faults   string
	fastpath bool
	jsonPath string
}

// remoteExperiments are the sweeps euad can run on our behalf.
var remoteExperiments = map[string]bool{
	"fig2":      true,
	"fig3":      true,
	"assurance": true,
	"ablation":  true,
}

// runRemote submits each requested sweep to a euad daemon and prints the
// daemon-rendered tables. Because the daemon renders with the same
// writers and configuration description as the local path, stdout is
// byte-identical to running the sweep locally with the same parameters.
func runRemote(opts remoteOpts, out, diag io.Writer, sigs <-chan os.Signal) error {
	todo := strings.Split(opts.exp, ",")
	for _, e := range todo {
		if !remoteExperiments[e] {
			return fmt.Errorf("experiment %q cannot run remotely (supported: fig2, fig3, assurance, ablation)", e)
		}
	}
	prefix := opts.jobID
	if prefix == "" {
		// Fresh random IDs each invocation: reruns recompute instead of
		// replaying a previous submission's result. A fixed -job-id opts
		// into replay/resume semantics.
		var buf [8]byte
		if _, err := rand.Read(buf[:]); err != nil {
			return err
		}
		prefix = "euasim-" + hex.EncodeToString(buf[:])
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if sigs != nil {
		go func() {
			select {
			case s := <-sigs:
				fmt.Fprintf(diag, "euasim: received %v, abandoning remote wait (jobs keep running on %s)\n", s, opts.base)
				cancel()
			case <-ctx.Done():
			}
		}()
	}

	c := client.New(opts.base)
	var docs []experiment.JSONDocument
	total := time.Now()
	for _, e := range todo {
		start := time.Now()
		spec := server.JobSpec{
			ID:         fmt.Sprintf("%s-%s", prefix, e),
			Kind:       server.KindSweep,
			Experiment: e,
			Energy:     opts.preset,
			Loads:      opts.loads,
			Seeds:      opts.seeds,
			Horizon:    opts.horizon,
			Faults:     opts.faults,
			FastPath:   opts.fastpath,
		}
		st, err := c.Run(ctx, spec)
		if err != nil {
			return fmt.Errorf("%s: %w", e, err)
		}
		if st.State != server.StateDone {
			return fmt.Errorf("%s: job %s %s: %w", e, st.ID, st.State, st.Error)
		}
		var res server.SweepResult
		if err := json.Unmarshal(st.Result, &res); err != nil {
			return fmt.Errorf("%s: decode result: %w", e, err)
		}
		fmt.Fprintf(out, "== %s (%s) ==\n", e, res.Config)
		io.WriteString(out, res.Text)
		fmt.Fprintln(out)
		fmt.Fprintf(diag, "euasim: %s done remotely in %v (job %s)\n",
			e, time.Since(start).Round(time.Millisecond), st.ID)
		docs = append(docs, res.JSONDocument)
	}
	fmt.Fprintf(diag, "euasim: all experiments done in %v\n", time.Since(total).Round(time.Millisecond))
	if opts.jsonPath != "" {
		f, err := os.Create(opts.jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		for _, doc := range docs {
			if err := experiment.WriteJSON(f, doc); err != nil {
				return err
			}
		}
		fmt.Fprintf(out, "JSON results written to %s\n", opts.jsonPath)
	}
	return nil
}
